"""Unit tests for the scheduling policies (Table 2)."""

import numpy as np
import pytest

from repro.arch.memory_map import MemoryMap
from repro.arch.noc import Interconnect
from repro.arch.topology import Topology
from repro.config import (
    CacheConfig,
    MemoryConfig,
    NocConfig,
    TopologyConfig,
)
from repro.core.cache.camp import CampMapper
from repro.core.scheduler.base import SchedulerContext
from repro.core.scheduler.colocate import ColocateScheduler
from repro.core.scheduler.hybrid import HybridScheduler
from repro.core.scheduler.lowest_distance import LowestDistanceScheduler
from repro.core.scheduler.work_stealing import (
    WorkStealingScheduler,
    rebalance_by_stealing,
)
from repro.runtime.task import Task, TaskHint
from repro.runtime.workload_exchange import WorkloadExchange


def make_context(with_camps: bool = False) -> SchedulerContext:
    cache = CacheConfig(num_camps=3)
    groups = cache.num_groups() if with_camps else 1
    topo = Topology(TopologyConfig(), num_groups=groups)
    memmap = MemoryMap(topo, MemoryConfig())
    noc = Interconnect(topo, NocConfig(), MemoryConfig())
    mapper = CampMapper(topo, memmap, cache) if with_camps else None
    return SchedulerContext(
        memory_map=memmap,
        cost_matrix=noc.cost_matrix,
        exchange=WorkloadExchange(topo, 250),
        camp_mapper=mapper,
        hybrid_weight=30.0,
    )


def task_with_addrs(ctx, addrs, spawner=0) -> Task:
    return Task(
        func=lambda c: None,
        timestamp=0,
        hint=TaskHint(addresses=np.asarray(addrs, dtype=np.int64)),
        spawner_unit=spawner,
    )


def unit_addr(ctx, unit: int, offset: int = 0) -> int:
    return unit * ctx.memory_map.unit_capacity + offset


class TestColocate:
    def test_runs_at_main_elements_home(self):
        ctx = make_context()
        sched = ColocateScheduler(ctx)
        t = task_with_addrs(ctx, [unit_addr(ctx, 9), unit_addr(ctx, 80)])
        assert sched.choose_unit(t) == 9

    def test_hintless_task_stays_at_spawner(self):
        ctx = make_context()
        sched = ColocateScheduler(ctx)
        t = task_with_addrs(ctx, [], spawner=17)
        assert sched.choose_unit(t) == 17


class TestLowestDistance:
    def test_single_address_behaves_like_colocate(self):
        ctx = make_context()
        sched = LowestDistanceScheduler(ctx)
        t = task_with_addrs(ctx, [unit_addr(ctx, 42)])
        assert sched.choose_unit(t) == 42

    def test_picks_the_data_hosting_majority(self):
        """Three elements in unit 7, one far away: unit 7 wins."""
        ctx = make_context()
        sched = LowestDistanceScheduler(ctx)
        addrs = [unit_addr(ctx, 7, off) for off in (0, 64, 128)]
        addrs.append(unit_addr(ctx, 120))
        t = task_with_addrs(ctx, addrs)
        assert sched.choose_unit(t) == 7

    def test_candidates_restricted_to_data_homes(self):
        """The chosen unit always hosts at least one hint element."""
        ctx = make_context()
        sched = LowestDistanceScheduler(ctx)
        rng = np.random.default_rng(3)
        for _ in range(20):
            units = rng.integers(0, 128, size=8)
            t = task_with_addrs(ctx, [unit_addr(ctx, int(u)) for u in units])
            assert sched.choose_unit(t) in set(units.tolist())

    def test_near_tie_prefers_main_home(self):
        ctx = make_context()
        sched = LowestDistanceScheduler(ctx)
        stack_units = ctx.memory_map.topology.units_in_stack(0)
        a, b = int(stack_units[0]), int(stack_units[1])
        # Same stack: distances differ by <= d_intra, within tolerance.
        t = task_with_addrs(ctx, [unit_addr(ctx, a), unit_addr(ctx, b)])
        assert sched.choose_unit(t) == a


class TestHybrid:
    def test_reduces_to_distance_when_loads_equal(self):
        ctx = make_context()
        sched = HybridScheduler(ctx)
        t = task_with_addrs(ctx, [unit_addr(ctx, 3, off) for off in (0, 64)],
                            spawner=3)
        assert sched.choose_unit(t) == 3

    def test_avoids_heavily_loaded_unit(self):
        ctx = make_context()
        sched = HybridScheduler(ctx)
        # Load unit 3 massively; the snapshot must reflect it.
        for other in range(128):
            ctx.exchange.on_enqueue(other, 2000.0)
        ctx.exchange.on_enqueue(3, 100000.0)
        ctx.exchange.force_exchange(0.0)
        t = task_with_addrs(ctx, [unit_addr(ctx, 3)], spawner=3)
        chosen = sched.choose_unit(t)
        assert chosen != 3
        # ...but it stays nearby (same stack beats far idle units).
        assert ctx.cost_matrix[3, chosen] <= 30.0

    def test_idle_unit_attracts_within_weight_budget(self):
        """An idle unit within B of the data location wins (Section 5.2's
        intuition for choosing B)."""
        ctx = make_context()
        sched = HybridScheduler(ctx)
        # Everyone loaded except unit 5; data at unit 4 (loaded).
        for u in range(128):
            ctx.exchange.on_enqueue(u, 0.0 if u == 5 else 5000.0)
        ctx.exchange.force_exchange(0.0)
        t = task_with_addrs(ctx, [unit_addr(ctx, 4)], spawner=4)
        chosen = sched.choose_unit(t)
        assert chosen == 5

    def test_deadband_keeps_balanced_tasks_local(self):
        """Noise-level load differences must not move local tasks
        (K-means stays flat across designs, Section 7.1)."""
        ctx = make_context()
        sched = HybridScheduler(ctx)
        rng = np.random.default_rng(0)
        for u in range(128):
            ctx.exchange.on_enqueue(u, 1000.0 + rng.uniform(-50, 50))
        ctx.exchange.force_exchange(0.0)
        t = task_with_addrs(ctx, [unit_addr(ctx, 77)], spawner=77)
        assert sched.choose_unit(t) == 77

    def test_camp_awareness_lowers_mem_cost(self):
        ctx = make_context(with_camps=True)
        plain = HybridScheduler(ctx, use_camps=False)
        campy = HybridScheduler(ctx, use_camps=True)
        t = task_with_addrs(ctx, [unit_addr(ctx, 100)], spawner=0)
        mem_plain = ctx.mem_cost_vector(t, use_camps=False)
        mem_campy = ctx.mem_cost_vector(t, use_camps=True)
        assert (mem_campy <= mem_plain + 1e-9).all()
        assert mem_campy.sum() < mem_plain.sum()

    def test_hintless_task_goes_to_idle_unit(self):
        ctx = make_context()
        sched = HybridScheduler(ctx)
        for u in range(128):
            ctx.exchange.on_enqueue(u, 10.0 if u == 60 else 1000.0)
        ctx.exchange.force_exchange(0.0)
        t = task_with_addrs(ctx, [], spawner=60)
        assert sched.choose_unit(t) == 60


class TestWorkloadEstimate:
    def test_workload_grows_with_distance(self):
        ctx = make_context()
        t = task_with_addrs(ctx, [unit_addr(ctx, 0)])
        near = ctx.task_workload(t, 0)
        far = ctx.task_workload(t, 127)
        assert far > near

    def test_programmer_value_overrides_estimate(self):
        ctx = make_context()
        t = Task(func=lambda c: None, timestamp=0,
                 hint=TaskHint(addresses=np.array([0]), workload=777.0))
        assert ctx.task_workload(t, 0) == 777.0
        assert ctx.task_workload(t, 127) == 777.0

    def test_hintless_task_costs_compute_only(self):
        ctx = make_context()
        t = task_with_addrs(ctx, [])
        t.compute_cycles = 99.0
        assert ctx.task_workload(t, 5) == 99.0

    def test_camp_aware_estimate_never_larger(self):
        ctx = make_context(with_camps=True)
        ctx_plain = make_context(with_camps=False)
        t = task_with_addrs(ctx, [unit_addr(ctx, 100)])
        for u in (0, 50, 127):
            assert ctx.task_workload(t, u) <= ctx_plain.task_workload(t, u) + 1e-9


class TestRebalanceByStealing:
    @staticmethod
    def flat_estimate(task, unit):
        return task.booked_workload

    def _mk(self, w):
        t = Task(func=lambda c: None, timestamp=0, hint=TaskHint.empty())
        t.booked_workload = w
        return t

    def test_moves_from_loaded_to_idle(self):
        heavy = [self._mk(100.0) for _ in range(10)]
        by_unit = [list(heavy), []]
        for t in heavy:
            t.assigned_unit = 0
        steals = rebalance_by_stealing(
            by_unit, self.flat_estimate, cores_per_unit=1, steal_overhead=0.0
        )
        assert steals > 0
        assert 3 <= len(by_unit[1]) <= 7
        for t in by_unit[1]:
            assert t.stolen and t.assigned_unit == 1

    def test_respects_overhead(self):
        """A huge steal overhead makes every move unprofitable."""
        by_unit = [[self._mk(10.0), self._mk(10.0)], []]
        steals = rebalance_by_stealing(
            by_unit, self.flat_estimate, 1, steal_overhead=1e9
        )
        assert steals == 0

    def test_skips_monster_tail_and_moves_other_victims(self):
        """An unmovable giant task must not stall the whole pass."""
        giant = self._mk(10_000.0)
        light = [self._mk(100.0) for _ in range(10)]
        by_unit = [[giant], list(light), []]
        steals = rebalance_by_stealing(
            by_unit, self.flat_estimate, 1, steal_overhead=0.0
        )
        assert steals > 0           # unit 1's tasks still rebalanced
        assert by_unit[0] == [giant]

    def test_single_unit_noop(self):
        by_unit = [[self._mk(5.0)]]
        assert rebalance_by_stealing(by_unit, self.flat_estimate, 1) == 0

    def test_on_move_callback_fires(self):
        moves = []
        by_unit = [[self._mk(10.0) for _ in range(6)], []]
        rebalance_by_stealing(
            by_unit, self.flat_estimate, 1, steal_overhead=0.0,
            on_move=lambda t, v, th, od, nd: moves.append((v, th)),
        )
        assert moves and all(m == (0, 1) for m in moves)

    def test_work_stealing_scheduler_flags(self):
        ctx = make_context()
        assert WorkStealingScheduler(ctx).uses_work_stealing
        assert not LowestDistanceScheduler(ctx).uses_work_stealing
        assert HybridScheduler(ctx).uses_window_rescheduling


class TestAliveMasking:
    """Fault-injection hardening: all policies honor the alive mask."""

    def _dead(self, ctx, *units):
        mask = np.ones(ctx.memory_map.topology.num_units, dtype=bool)
        for u in units:
            mask[u] = False
        ctx.alive_mask = mask
        return mask

    def test_context_defaults_to_all_alive(self):
        ctx = make_context()
        assert ctx.alive_mask is None
        assert ctx.is_alive(0) and ctx.is_alive(127)
        assert ctx.nearest_alive(42) == 42

    def test_nearest_alive_prefers_cheapest_survivor(self):
        ctx = make_context()
        self._dead(ctx, 5)
        repl = ctx.nearest_alive(5)
        assert repl != 5 and ctx.is_alive(repl)
        # the replacement is the cheapest alive unit by NoC cost
        costs = ctx.cost_matrix[5].copy()
        costs[5] = np.inf
        assert ctx.cost_matrix[5, repl] == costs.min()

    def test_nearest_alive_raises_when_all_dead(self):
        ctx = make_context()
        ctx.alive_mask = np.zeros(
            ctx.memory_map.topology.num_units, dtype=bool)
        with pytest.raises(RuntimeError, match="no alive"):
            ctx.nearest_alive(0)

    def test_colocate_avoids_dead_home(self):
        ctx = make_context()
        sched = ColocateScheduler(ctx)
        task = task_with_addrs(ctx, [unit_addr(ctx, 9)])
        assert sched.choose_unit(task) == 9
        self._dead(ctx, 9)
        chosen = sched.choose_unit(task)
        assert chosen != 9 and ctx.is_alive(chosen)

    def test_lowest_distance_skips_dead_candidates(self):
        ctx = make_context()
        sched = LowestDistanceScheduler(ctx)
        addrs = [unit_addr(ctx, 3), unit_addr(ctx, 4)]
        task = task_with_addrs(ctx, addrs, spawner=3)
        assert sched.choose_unit(task) in (3, 4)
        self._dead(ctx, 3)
        assert sched.choose_unit(task) == 4

    def test_lowest_distance_all_candidates_dead(self):
        ctx = make_context()
        sched = LowestDistanceScheduler(ctx)
        task = task_with_addrs(ctx, [unit_addr(ctx, 3), unit_addr(ctx, 4)])
        self._dead(ctx, 3, 4)
        chosen = sched.choose_unit(task)
        assert chosen not in (3, 4) and ctx.is_alive(chosen)

    def test_hybrid_never_picks_dead_unit(self):
        ctx = make_context()
        sched = HybridScheduler(ctx)
        task = task_with_addrs(ctx, [unit_addr(ctx, 7)], spawner=7)
        assert sched.choose_unit(task) == 7
        self._dead(ctx, 7)
        chosen = sched.choose_unit(task)
        assert chosen != 7 and ctx.is_alive(chosen)

    def test_fallback_on_empty_hint_respects_mask(self):
        ctx = make_context()
        sched = HybridScheduler(ctx)
        task = Task(func=lambda c: None, timestamp=0,
                    hint=TaskHint.empty(), spawner_unit=11)
        assert sched.choose_unit(task) == 11
        self._dead(ctx, 11)
        chosen = sched.choose_unit(task)
        assert chosen != 11 and ctx.is_alive(chosen)


class TestStealingEligibility:
    """Dead units neither donate to nor receive from the rebalancer."""

    @staticmethod
    def flat_estimate(task, unit):
        return task.booked_workload

    def _mk(self, w):
        t = Task(func=lambda c: None, timestamp=0, hint=TaskHint.empty())
        t.booked_workload = w
        return t

    def test_dead_idle_unit_receives_nothing(self):
        heavy = [self._mk(100.0) for _ in range(10)]
        by_unit = [list(heavy), [], []]
        eligible = np.array([True, False, True])
        steals = rebalance_by_stealing(
            by_unit, self.flat_estimate, 1, steal_overhead=0.0,
            eligible=eligible,
        )
        assert steals > 0
        assert by_unit[1] == []          # the dead unit stayed empty
        assert len(by_unit[2]) > 0

    def test_fewer_than_two_eligible_is_noop(self):
        by_unit = [[self._mk(100.0) for _ in range(6)], []]
        eligible = np.array([True, False])
        assert rebalance_by_stealing(
            by_unit, self.flat_estimate, 1, steal_overhead=0.0,
            eligible=eligible,
        ) == 0

    def test_none_eligible_matches_legacy_behavior(self):
        a = [[self._mk(100.0) for _ in range(10)], []]
        b = [list(a[0]), []]
        with_mask = rebalance_by_stealing(
            a, self.flat_estimate, 1, steal_overhead=0.0,
            eligible=np.array([True, True]),
        )
        without = rebalance_by_stealing(
            b, self.flat_estimate, 1, steal_overhead=0.0,
        )
        assert with_mask == without
        assert [len(q) for q in a] == [len(q) for q in b]
