"""Unit + property tests for camp-location mapping (Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.memory_map import MemoryMap
from repro.arch.noc import Interconnect
from repro.arch.topology import Topology
from repro.config import (
    CacheConfig,
    CampMapping,
    MemoryConfig,
    NocConfig,
    TopologyConfig,
)
from repro.core.cache.camp import CampMapper


def make_mapper(camp_mapping=CampMapping.SKEWED, num_camps=3,
                topo_cfg=None) -> CampMapper:
    topo_cfg = topo_cfg or TopologyConfig()
    cache = CacheConfig(num_camps=num_camps, camp_mapping=camp_mapping)
    topo = Topology(topo_cfg, num_groups=cache.num_groups())
    memmap = MemoryMap(topo, MemoryConfig())
    return CampMapper(topo, memmap, cache)


@pytest.fixture
def mapper() -> CampMapper:
    return make_mapper()


class TestLocations:
    def test_one_location_per_group(self, mapper):
        locs = mapper.locations(12345)
        assert len(locs) == 4
        groups = [mapper.topology.group_of(int(u)) for u in locs]
        assert groups == [0, 1, 2, 3]

    def test_home_group_contributes_the_home(self, mapper):
        line = 999
        home = mapper.home_unit(line)
        hg = mapper.topology.group_of(home)
        assert mapper.locations(line)[hg] == home
        assert mapper.camp_in_group(line, hg) == home

    def test_camps_exclude_home(self, mapper):
        line = 4321
        camps = mapper.camp_locations(line)
        assert len(camps) == 3
        assert mapper.home_unit(line) not in camps

    def test_deterministic(self, mapper):
        a = mapper.locations(777)
        b = mapper.locations(777)
        assert np.array_equal(a, b)
        other = make_mapper()
        assert np.array_equal(other.locations(777), a)

    def test_locations_read_only(self, mapper):
        with pytest.raises(ValueError):
            mapper.locations(5)[0] = 3

    def test_vectorised_matches_scalar(self, mapper):
        lines = np.array([1, 2, 3, 1000, 54321])
        mat = mapper.locations_for_lines(lines)
        for i, line in enumerate(lines):
            assert np.array_equal(mat[i], mapper.locations(int(line)))


class TestSkewVsIdentical:
    def test_skewed_mappings_differ_across_groups(self):
        mapper = make_mapper(CampMapping.SKEWED)
        upg = mapper.units_per_group
        differs = 0
        for line in range(100, 200):
            offsets = [int(u) % upg for u in mapper.locations(line)]
            if len(set(offsets)) > 1:
                differs += 1
        assert differs > 80  # almost all lines map differently per group

    def test_identical_mapping_uses_same_offset_everywhere(self):
        mapper = make_mapper(CampMapping.IDENTICAL)
        upg = mapper.units_per_group
        for line in range(100, 200):
            home = mapper.home_unit(line)
            hg = mapper.topology.group_of(home)
            offsets = {
                int(u) % upg
                for g, u in enumerate(mapper.locations(line)) if g != hg
            }
            assert len(offsets) == 1

    def test_skewed_spreads_camps_within_group(self):
        """Camps of many lines cover many units of each group."""
        mapper = make_mapper(CampMapping.SKEWED)
        used = set()
        # sample lines homed across the whole machine, not just unit 0
        step = mapper.memory_map.total_capacity // 64 // 997
        for line in range(0, mapper.memory_map.total_capacity // 64, step):
            for u in mapper.camp_locations(line):
                used.add(int(u))
        # nearly every unit should be a camp for something
        assert len(used) > 100


class TestSetAndTags:
    def test_set_index_uses_low_bits(self, mapper):
        assert mapper.set_index(0) == 0
        assert mapper.set_index(mapper.num_sets) == 0
        assert mapper.set_index(mapper.num_sets + 5) == 5

    def test_tag_bits_match_section_4_3(self, mapper):
        # log2(64GB)=36, minus 6 offset, 15 set, 5 unit-in-group = 10.
        assert mapper.tag_bits_per_block() == 10

    def test_tag_storage_is_about_160kb(self, mapper):
        size = mapper.tag_storage_bytes()
        assert 150_000 < size < 170_000  # paper: 160 kB

    def test_tag_size_constant_when_scaling_units(self):
        """Section 4.3: more stacks with C unchanged -> same tag size."""
        small = make_mapper(topo_cfg=TopologyConfig(2, 2, 8))
        large = make_mapper(topo_cfg=TopologyConfig(8, 8, 8))
        # units-per-group bits grow, but total-capacity bits grow the
        # same amount; the per-block tag stays constant.
        assert small.tag_bits_per_block() == large.tag_bits_per_block()


class TestNearestLocation:
    def test_nearest_is_argmin_of_cost(self, mapper):
        noc = Interconnect(mapper.topology, NocConfig(), MemoryConfig())
        cost = noc.cost_matrix
        for line in [3, 77, 100_000]:
            for requester in [0, 31, 127]:
                unit, is_home = mapper.nearest_location(line, requester, cost)
                locs = mapper.locations(line)
                best = locs[int(np.argmin(cost[requester, locs]))]
                assert unit == best
                assert is_home == (unit == mapper.home_unit(line))

    def test_requester_in_home_group_gets_home(self, mapper):
        """Within the home's group the only allowed location is the
        home, so nearby requesters usually go straight there."""
        line = 42
        home = mapper.home_unit(line)
        noc = Interconnect(mapper.topology, NocConfig(), MemoryConfig())
        unit, is_home = mapper.nearest_location(line, home, noc.cost_matrix)
        assert unit == home and is_home


class TestValidation:
    def test_group_mismatch_rejected(self):
        topo = Topology(TopologyConfig(), num_groups=2)
        memmap = MemoryMap(topo, MemoryConfig())
        with pytest.raises(ValueError):
            CampMapper(topo, memmap, CacheConfig(num_camps=3))

    def test_clear_cache(self, mapper):
        mapper.locations(5)
        assert mapper._loc_cache
        mapper.clear_cache()
        assert not mapper._loc_cache


@settings(max_examples=40, deadline=None)
@given(line=st.integers(0, (1 << 30) - 1),
       camps=st.sampled_from([1, 3, 7]))
def test_property_locations_well_formed(line, camps):
    mapper = make_mapper(num_camps=camps)
    locs = mapper.locations(line)
    assert len(locs) == camps + 1
    assert len(set(int(u) for u in locs)) == camps + 1  # distinct units
    for g, u in enumerate(locs):
        assert mapper.topology.group_of(int(u)) == g
