"""Unit tests for the analysis layer: metrics, stats, reporting."""

import numpy as np
import pytest

from repro.analysis.metrics import RunResult
from repro.analysis.reporting import (
    format_breakdown,
    format_comparison_table,
    format_series,
    normalize,
)
from repro.analysis.stats import (
    coefficient_of_variation,
    distribution_summary,
    geomean,
    imbalance_ratio,
    quartiles,
)
from repro.arch.dram import DramStats
from repro.arch.energy import EnergyBreakdown
from repro.arch.noc import TrafficMeter
from repro.arch.sram import SramStats
from repro.core.cache.traveller import CacheStatsTotal


def make_result(makespan=1000.0, hops=50, cycles=None, energy=None):
    return RunResult(
        design="O",
        workload="pr",
        makespan_cycles=makespan,
        active_cycles_per_core=np.asarray(
            cycles if cycles is not None else [100.0, 200.0, 300.0, 400.0]
        ),
        traffic=TrafficMeter(inter_hops=hops),
        dram=DramStats(),
        sram=SramStats(),
        cache=CacheStatsTotal(),
        energy=energy or EnergyBreakdown(
            core_sram_pj=10, dram_pj=20, interconnect_pj=30, static_pj=40
        ),
    )


class TestStats:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_quartiles(self):
        q = quartiles(range(1, 101))
        assert q["min"] == 1 and q["max"] == 100
        assert 49 <= q["median"] <= 52

    def test_imbalance_ratio(self):
        assert imbalance_ratio([1.0, 1.0, 1.0]) == 1.0
        assert imbalance_ratio([1.0, 3.0]) == pytest.approx(1.5)

    def test_cov(self):
        assert coefficient_of_variation([5.0, 5.0]) == 0.0
        assert coefficient_of_variation([0.0, 10.0]) == pytest.approx(1.0)

    def test_distribution_summary_keys(self):
        s = distribution_summary([1.0, 2.0, 3.0])
        assert {"min", "q25", "median", "q75", "max",
                "imbalance", "cov"} <= set(s)


class TestRunResult:
    def test_speedup(self):
        fast = make_result(makespan=500.0)
        slow = make_result(makespan=1000.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_ratios(self):
        a = make_result(hops=100)
        b = make_result(hops=50)
        assert b.hops_ratio_over(a) == pytest.approx(0.5)
        assert a.energy_ratio_over(a) == pytest.approx(1.0)

    def test_zero_hop_baseline(self):
        none = make_result(hops=0)
        some = make_result(hops=5)
        assert none.hops_ratio_over(none) == 0.0
        assert some.hops_ratio_over(none) == float("inf")

    def test_load_imbalance(self):
        r = make_result(cycles=[100.0, 100.0, 100.0, 500.0])
        assert r.load_imbalance() == pytest.approx(500.0 / 200.0)

    def test_sorted_curve(self):
        r = make_result(cycles=[3.0, 1.0, 2.0, 4.0])
        assert r.sorted_active_cycles().tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_summary_mentions_key_fields(self):
        text = make_result().summary()
        assert "O/pr" in text and "hops" in text and "makespan" in text


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(1, 2, 3, 4)
        assert e.total_pj == 10
        assert e.total_uj == pytest.approx(1e-5)

    def test_normalized_to(self):
        a = EnergyBreakdown(10, 20, 30, 40)
        b = EnergyBreakdown(5, 10, 15, 20)
        parts = b.normalized_to(a)
        assert parts["total"] == pytest.approx(0.5)
        assert parts["dram"] == pytest.approx(0.1)

    def test_as_dict(self):
        d = EnergyBreakdown(1, 2, 3, 4).as_dict()
        assert d["total_pj"] == 10


class TestReporting:
    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ZeroDivisionError):
            normalize({"a": 0.0}, "a")

    def test_comparison_table(self):
        text = format_comparison_table(
            "T", ["r1", "r2"], ["c1", "c2"],
            [[1.0, 2.0], [3.0, 4.0]],
        )
        assert "r1" in text and "c2" in text and "4.000" in text

    def test_series(self):
        text = format_series("S", "x", [1, 2], {"y": [0.5, 0.6]})
        assert "0.600" in text and text.startswith("S")

    def test_breakdown(self):
        text = format_breakdown(
            "B", ["d1"], {"dram": [0.4], "noc": [0.6]}
        )
        assert "1.000" in text  # the total column
