"""Tests for the declarative campaign subsystem: the DSI-style
resolver (cross-references, cycle detection, $RUNTIME_VALUE, deep
merges, path-qualified type errors), deterministic expansion with
override precedence, fault-schedule materialization, run-key and
cache-byte parity between the committed ``campaigns/full_matrix.json``
and the sweep engine, machine-parseable CLI stdout, and the server's
``POST /v1/campaign`` batch intake (cold fan-out, warm zero-execution
replay)."""

import json
import time
from pathlib import Path

import pytest

import repro.sweep.cache as cache_mod
import repro.sweep.runner as runner_mod
from repro.campaign.resolver import (
    SpecError,
    deep_merge,
    get_path,
    interpolate,
    parse_set_args,
    runtime_env_key,
    set_path,
)
from repro.campaign.runner import (
    CampaignReport,
    run_campaign,
    run_campaign_via_server,
)
from repro.campaign.spec import CampaignSpec, load_campaign
from repro.config import experiment_config
from repro.service.spec import ExperimentSpec
from repro.sweep.cache import ResultCache
from repro.sweep.keys import run_key
from repro.sweep.runner import SweepRunner, matrix_points

REPO = Path(__file__).resolve().parent.parent
CAMPAIGNS = REPO / "campaigns"


@pytest.fixture(autouse=True)
def _isolate_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env_cache"))
    monkeypatch.setenv("REPRO_NO_HISTORY", "1")


# ----------------------------------------------------------------------
# resolver: ${...} references and $RUNTIME_VALUE
# ----------------------------------------------------------------------
class TestInterpolate:
    def test_whole_string_reference_keeps_type(self):
        doc = {"schedules": {"u4": {"random": {"unit_fails": 4}}},
               "base": {"faults": "${schedules.u4}"}}
        out = interpolate(doc)
        assert out["base"]["faults"] == {"random": {"unit_fails": 4}}

    def test_embedded_reference_interpolates_as_text(self):
        doc = {"base": {"mesh": "2x2"},
               "description": "grid at ${base.mesh}"}
        assert interpolate(doc)["description"] == "grid at 2x2"

    def test_references_chase_through_references(self):
        doc = {"a": "${b}", "b": "${c}", "c": 7}
        assert interpolate(doc)["a"] == 7

    def test_cycle_reports_the_chain(self):
        doc = {"a": "${b}", "b": "${c}", "c": "${a}"}
        with pytest.raises(SpecError) as err:
            interpolate(doc)
        message = str(err.value)
        assert "circular ${...} reference" in message
        # the full chain, in traversal order, back to the start
        assert "b -> c -> a" in message or "a -> b -> c" in message

    def test_unknown_reference_names_the_path(self):
        with pytest.raises(SpecError, match="no such key 'schedules.u9'"):
            interpolate({"base": {"faults": "${schedules.u9}"}})

    def test_non_scalar_cannot_embed_in_text(self):
        doc = {"schedules": {"u4": {"random": {}}},
               "description": "uses ${schedules.u4} inline"}
        with pytest.raises(SpecError, match="is not a scalar"):
            interpolate(doc)

    def test_prose_glob_stays_literal(self):
        # ``${schedules.*}`` in a description is prose, not a reference
        doc = {"description": "splice via ${schedules.*}"}
        assert interpolate(doc)["description"] == "splice via ${schedules.*}"

    def test_runtime_value_from_set(self):
        doc = {"base": {"seed": "$RUNTIME_VALUE"}}
        out = interpolate(doc, runtime={"base.seed": 7})
        assert out["base"]["seed"] == 7

    def test_runtime_value_from_environment(self):
        doc = {"base": {"seed": "$RUNTIME_VALUE"}}
        key = runtime_env_key("base.seed")
        assert key == "REPRO_CAMPAIGN_BASE_SEED"
        out = interpolate(doc, env={key: "11"})
        assert out["base"]["seed"] == 11  # parsed as JSON, not str

    def test_runtime_value_missing_names_both_fixes(self):
        with pytest.raises(SpecError) as err:
            interpolate({"base": {"seed": "$RUNTIME_VALUE"}}, env={})
        message = str(err.value)
        assert "--set base.seed=VALUE" in message
        assert "REPRO_CAMPAIGN_BASE_SEED" in message


class TestPathsAndMerges:
    def test_parse_set_args(self):
        parsed = parse_set_args(["a.b=1", "c=x", "d=[1, 2]", "e=null"])
        assert parsed == {"a.b": 1, "c": "x", "d": [1, 2], "e": None}

    def test_parse_set_args_rejects_flagless_entry(self):
        with pytest.raises(SpecError, match="--set needs key=value"):
            parse_set_args(["just-a-key"])

    def test_get_path_indexes_lists(self):
        assert get_path({"a": [{"b": 3}]}, "a.0.b") == 3
        assert get_path({}, "a.b", default=None) is None
        with pytest.raises(SpecError, match="no such key 'a.z'"):
            get_path({"a": {}}, "a.z")

    def test_set_path_creates_levels(self):
        tree = {"config": {"cache": {"num_camps": 3}}}
        set_path(tree, "config.cache.num_camps", 9)
        set_path(tree, "config.noc.link_bytes", 8)
        assert tree["config"]["cache"]["num_camps"] == 9
        assert tree["config"]["noc"]["link_bytes"] == 8

    def test_deep_merge_dicts_recursive_lists_replace(self):
        base = {"config": {"cache": {"num_camps": 3, "style": "a"}},
                "tags": [1, 2]}
        out = deep_merge(base, {"config": {"cache": {"num_camps": 8}},
                                "tags": [9]})
        assert out["config"]["cache"] == {"num_camps": 8, "style": "a"}
        assert out["tags"] == [9]
        assert base["config"]["cache"]["num_camps"] == 3  # not mutated


# ----------------------------------------------------------------------
# resolver: path-qualified validation errors
# ----------------------------------------------------------------------
class TestValidationMessages:
    def test_type_mismatch_is_path_qualified(self):
        with pytest.raises(SpecError,
                           match=r"config.num_camps: expected int, got '9'"):
            ExperimentSpec.from_dict({
                "design": "B", "workload": "pr",
                "config": {"cache": {"num_camps": "9"}},
            }).resolved_config()

    def test_unknown_field_names_the_section(self):
        with pytest.raises(SpecError,
                           match=r"unknown field 'nope' in config.cache"):
            ExperimentSpec.from_dict({
                "design": "B", "workload": "pr",
                "config": {"cache": {"nope": 1}},
            }).resolved_config()

    def test_unknown_axis_key_is_path_qualified(self):
        with pytest.raises(SpecError,
                           match=r"axes.designs: unknown point key"):
            CampaignSpec.from_dict(
                {"name": "t", "axes": {"designs": ["B"]}})

    def test_bad_point_error_names_the_label(self):
        campaign = CampaignSpec.from_dict(
            {"name": "t", "base": {"workload": "pr"},
             "axes": {"design": ["ZZ"]}})
        with pytest.raises(SpecError,
                           match=r"point 'ZZ/pr': unknown design 'ZZ'"):
            campaign.expand()

    def test_axes_and_matrix_are_exclusive(self):
        with pytest.raises(SpecError, match="not both"):
            CampaignSpec.from_dict({"name": "t",
                                    "axes": {"design": ["B"]},
                                    "matrix": {"design": ["O"]}})

    def test_spec_error_is_one_class(self):
        # service.spec re-exports the resolver's class: isinstance
        # checks hold across both import paths.
        from repro.service.spec import SpecError as service_spec_error

        assert service_spec_error is SpecError


# ----------------------------------------------------------------------
# expansion: order, labels, include/exclude, precedence, dedupe
# ----------------------------------------------------------------------
class TestExpansion:
    def test_cross_product_first_axis_outermost(self):
        campaign = CampaignSpec.from_dict({
            "name": "t",
            "axes": {"workload": ["pr", "bfs"], "design": ["B", "O"]},
        })
        labels = [p.label for p in campaign.expand().points]
        assert labels == ["B/pr", "O/pr", "B/bfs", "O/bfs"]

    def test_dotted_axes_assign_nested_config(self):
        campaign = CampaignSpec.from_dict({
            "name": "t", "base": {"design": "B", "workload": "pr"},
            "axes": {"config.cache.num_camps": [3, 7]},
        })
        points = campaign.expand().points
        assert [p.spec.config["cache"]["num_camps"] for p in points] \
            == [3, 7]
        assert [p.label for p in points] \
            == ["B/pr num_camps=3", "B/pr num_camps=7"]

    def test_include_exclude(self):
        campaign = CampaignSpec.from_dict({
            "name": "t", "base": {"workload": "pr"},
            "axes": {"design": ["B", "C", "O"]},
            "exclude": [{"design": "C", "workload": "pr"}],
            "include": [{"design": "Sm", "workload": "bfs"}],
        })
        expansion = campaign.expand()
        labels = [p.label for p in expansion.points]
        assert labels == ["B/pr", "O/pr", "Sm/bfs include0"]
        assert expansion.points[-1].assignments == {"include": 0}

    def test_duplicate_points_dropped_and_counted(self):
        campaign = CampaignSpec.from_dict({
            "name": "t", "base": {"workload": "pr"},
            "axes": {"design": ["B", "O"]},
            "include": [{"design": "B"}],
        })
        expansion = campaign.expand()
        assert len(expansion.points) == 3  # include0 has its own label
        # forcing one label collapses the include0 point onto the
        # axes' design-B point; design O stays distinct.
        same_label = campaign.expand(
            sets={"label": "all-the-same"})
        assert len(same_label.points) == 2
        assert same_label.duplicates_dropped == 1

    def test_override_precedence_base_axes_overrides_set(self):
        doc = {"name": "t",
               "base": {"design": "B", "workload": "pr",
                        "config": {"cache": {"num_camps": 3}}}}
        one = CampaignSpec.from_dict(doc).expand().points[0]
        assert one.spec.config["cache"]["num_camps"] == 3

        doc["axes"] = {"config.cache.num_camps": [4]}
        two = CampaignSpec.from_dict(doc).expand().points[0]
        assert two.spec.config["cache"]["num_camps"] == 4

        doc["overrides"] = {"config": {"cache": {"num_camps": 8}}}
        three = CampaignSpec.from_dict(doc).expand().points[0]
        assert three.spec.config["cache"]["num_camps"] == 8

        four = CampaignSpec.from_dict(doc).expand(
            sets={"config.cache.num_camps": 9}).points[0]
        assert four.spec.config["cache"]["num_camps"] == 9

    def test_fingerprint_is_stable_and_content_addressed(self):
        doc = {"name": "t", "base": {"workload": "pr"},
               "axes": {"design": ["B", "O"]}}
        a = CampaignSpec.from_dict(doc).expand()
        b = CampaignSpec.from_dict(json.loads(json.dumps(doc))).expand()
        assert a.fingerprint == b.fingerprint
        shifted = CampaignSpec.from_dict(doc).expand(
            sets={"base.seed": 7})
        assert shifted.fingerprint != a.fingerprint


# ----------------------------------------------------------------------
# fault materialization
# ----------------------------------------------------------------------
class TestFaults:
    def test_random_block_matches_direct_make_random_schedule(self):
        from repro.arch.topology import Topology
        from repro.faults.schedule import make_random_schedule

        campaign = CampaignSpec.from_dict({
            "name": "t",
            "base": {"design": "O", "workload": "pr", "mesh": "2x2",
                     "faults": {"random": {"unit_fails": 2}}},
        })
        point = campaign.expand().points[0]
        cfg = experiment_config().scaled(2, 2).validate()
        topo = Topology(cfg.topology, num_groups=cfg.cache.num_groups())
        direct = make_random_schedule(topo.num_units, topo.mesh_links(),
                                      unit_fails=2, seed=cfg.seed)
        assert point.spec.faults == direct.to_dict()
        assert point.spec.fault_schedule().to_dict() == direct.to_dict()

    def test_empty_random_block_means_healthy(self):
        campaign = CampaignSpec.from_dict({
            "name": "t",
            "base": {"design": "B", "workload": "pr",
                     "faults": {"random": {"unit_fails": 0}}},
        })
        point = campaign.expand().points[0]
        assert point.spec.faults is None
        assert point.spec.run_key() == ExperimentSpec.from_dict(
            {"design": "B", "workload": "pr"}).run_key()

    def test_unknown_random_key_is_rejected(self):
        campaign = CampaignSpec.from_dict({
            "name": "t",
            "base": {"design": "B", "workload": "pr",
                     "faults": {"random": {"dies": 4}}},
        })
        with pytest.raises(SpecError, match=r"unknown faults.random key"):
            campaign.expand()

    def test_committed_fault_study_expands_with_event_counts(self):
        campaign = load_campaign(CAMPAIGNS / "fault_study.json")
        expansion = campaign.expand()
        assert len(expansion.points) == 10
        by_label = {p.label: p for p in expansion.points}
        assert by_label["B/pr healthy"].spec.faults is None
        for count in (2, 4, 8, 12):
            spec = by_label[f"B/pr u{count}"].spec
            assert len(spec.faults["events"]) == count


# ----------------------------------------------------------------------
# key parity with the sweep engine (the acceptance pin)
# ----------------------------------------------------------------------
class TestKeyParity:
    def test_full_matrix_keys_match_matrix_points_order(self):
        """``campaigns/full_matrix.json`` expands to exactly the sweep
        engine's 48-point grid: same order, same run keys, byte for
        byte."""
        campaign = load_campaign(CAMPAIGNS / "full_matrix.json")
        expansion = campaign.expand()
        cfg = experiment_config().validate()
        grid = matrix_points(config=cfg)
        assert len(expansion.points) == len(grid) == 48
        for point, sweep_point in zip(expansion.points, grid):
            assert point.spec.design == sweep_point.design
            assert point.spec.workload == sweep_point.workload
            assert point.spec.run_key() == run_key(
                sweep_point.design, sweep_point.workload, cfg)

    def test_campaign_run_writes_byte_identical_cache_entries(
            self, tmp_path, monkeypatch):
        """The committed full-matrix campaign (scoped down with --set
        to stay cheap) and the equivalent sweep write the *same bytes*
        under the same keys — one shared cache, not two formats."""
        monkeypatch.setattr(cache_mod.time, "time", lambda: 1.5)
        sets = {"axes.workload": ["pr"], "axes.design": ["B", "O"],
                "base.mesh": "2x2"}
        campaign = load_campaign(CAMPAIGNS / "full_matrix.json")
        expansion = campaign.expand(sets=sets)

        campaign_cache = ResultCache(root=tmp_path / "campaign")
        report = run_campaign(campaign, expansion,
                              cache=campaign_cache, jobs=1)
        assert not report.failures

        sweep_cache = ResultCache(root=tmp_path / "sweep")
        cfg = experiment_config().scaled(2, 2).validate()
        SweepRunner(cache=sweep_cache, jobs=1).run(
            matrix_points(["B", "O"], ["pr"], cfg))

        assert [o.key for o in report.outcomes] == [
            run_key(d, "pr", cfg) for d in ("B", "O")]
        for outcome in report.outcomes:
            ours = campaign_cache.path_for(outcome.key).read_bytes()
            theirs = sweep_cache.path_for(outcome.key).read_bytes()
            assert ours == theirs

    def test_warm_rerun_is_all_cache_hits(self, tmp_path):
        campaign = load_campaign(CAMPAIGNS / "smoke.json")
        cache = ResultCache(root=tmp_path / "cache")
        cold = run_campaign(campaign, campaign.expand(), cache=cache,
                            jobs=1)
        assert [o.source for o in cold.outcomes] == ["run", "run"]
        warm = run_campaign(campaign, campaign.expand(), cache=cache,
                            jobs=1)
        assert [o.source for o in warm.outcomes] == ["cache", "cache"]
        assert [o.key for o in warm.outcomes] \
            == [o.key for o in cold.outcomes]


# ----------------------------------------------------------------------
# loading and the archived report
# ----------------------------------------------------------------------
class TestLoadAndReport:
    def test_load_errors_are_path_prefixed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecError, match="bad.json: invalid JSON"):
            load_campaign(bad)
        unknown = tmp_path / "unknown.json"
        unknown.write_text(json.dumps({"name": "x", "axis": {}}),
                           encoding="utf-8")
        with pytest.raises(SpecError, match="unknown campaign key"):
            load_campaign(unknown)

    def test_committed_campaigns_all_validate(self):
        counts = {}
        for path in sorted(CAMPAIGNS.glob("*.json")):
            campaign = load_campaign(path)
            counts[campaign.name] = len(campaign.expand().points)
        assert counts == {"full_matrix": 48, "bench_suite": 6,
                          "fault_study": 10, "smoke": 2}

    def test_report_round_trip(self, tmp_path):
        campaign = load_campaign(CAMPAIGNS / "smoke.json")
        report = run_campaign(campaign, campaign.expand(),
                              cache=ResultCache(root=tmp_path / "c"),
                              jobs=1)
        out = tmp_path / "out"
        path = report.write(out, artifacts={"csv": True, "json": True})
        assert path == out / "report.json"
        assert (out / "results.csv").exists()
        assert (out / "results.json").exists()
        payload = CampaignReport.load(path)
        assert payload["schema"] == 1
        assert payload["name"] == "smoke"
        assert payload["fingerprint"] == report.fingerprint
        assert payload["spec_sha256"] == campaign.source_sha256
        rows = payload["points"]
        assert [r["label"] for r in rows] == ["B/pr", "O/pr"]
        assert all(r["key"] and r["metrics"]["makespan_cycles"] > 0
                   for r in rows)


# ----------------------------------------------------------------------
# CLI: stdout stays machine-parseable
# ----------------------------------------------------------------------
class TestCliJson:
    def test_expand_json_stdout_parses(self, capsys):
        from repro.cli import main

        rc = main(["campaign", "expand",
                   str(CAMPAIGNS / "smoke.json"), "--json", "-v"])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)  # stdout is pure JSON
        assert payload["name"] == "smoke"
        assert [p["label"] for p in payload["points"]] \
            == ["B/pr", "O/pr"]
        keys = [p["key"] for p in payload["points"]]
        cfg = experiment_config().scaled(2, 2).validate()
        assert keys == [run_key(d, "pr", cfg) for d in ("B", "O")]

    def test_validate_json_stdout_parses_even_on_failure(
            self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "axes": {"nope": [1]}}),
                       encoding="utf-8")
        rc = main(["campaign", "validate",
                   str(CAMPAIGNS / "smoke.json"), str(bad), "--json"])
        captured = capsys.readouterr()
        assert rc == 2
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        by_file = {row["file"]: row for row in payload["campaigns"]}
        assert by_file[str(CAMPAIGNS / "smoke.json")]["ok"] is True
        assert by_file[str(CAMPAIGNS / "smoke.json")]["points"] == 2
        assert "unknown point key" in by_file[str(bad)]["error"]


# ----------------------------------------------------------------------
# the server's POST /v1/campaign (thread mode, stubbed simulation)
# ----------------------------------------------------------------------
MINI = {"name": "mini",
        "base": {"workload": "pr", "mesh": "2x2"},
        "axes": {"design": ["B", "O"]}}


class _Stub:
    def __init__(self, handle, client, cache_root, calls):
        self.handle = handle
        self.client = client
        self.cache_root = cache_root
        self.calls = calls


@pytest.fixture
def stub(tmp_path, monkeypatch):
    from repro.service.client import ServiceClient
    from repro.service.server import run_in_thread

    calls = []

    def fake(design, workload, config, telemetry=None,
             fault_schedule=None):
        calls.append(design)
        time.sleep(0.05)
        from tests.test_service import _fake_result

        name = getattr(workload, "name", str(workload))
        return _fake_result(design=design, workload=name)

    monkeypatch.setattr(runner_mod, "_live_simulate", fake)
    cache_root = tmp_path / "server_cache"
    handle = run_in_thread(workers=0, cache_root=str(cache_root))
    client = ServiceClient(handle.base_url, timeout=60.0)
    yield _Stub(handle, client, cache_root, calls)
    handle.stop()


class TestServerCampaign:
    def test_campaign_endpoint_expands_and_intakes(self, stub):
        campaign = CampaignSpec.from_dict(MINI)
        answer = stub.client.campaign(campaign.to_dict())
        assert answer["name"] == "mini"
        assert answer["total"] == 2
        assert answer["fingerprint"] == campaign.expand().fingerprint
        assert [row["label"] for row in answer["points"]] \
            == ["B/pr", "O/pr"]
        assert [row["key"] for row in answer["points"]] \
            == [p.spec.run_key() for p in campaign.expand().points]
        counters = stub.client.stats()["counters"]
        assert counters["campaigns"] == 1
        assert counters["submissions"] == 2

    def test_cold_run_then_warm_zero_execution_replay(self, stub):
        """The acceptance bar: the same campaign document replayed
        against a warm server executes nothing new."""
        campaign = CampaignSpec.from_dict(MINI)
        cold = run_campaign_via_server(stub.client, campaign)
        assert not cold.failures
        assert sorted(stub.calls) == ["B", "O"]
        assert {o.source for o in cold.outcomes} <= {"run", "cache"}

        warm = run_campaign_via_server(stub.client, campaign)
        assert not warm.failures
        assert [o.source for o in warm.outcomes] == ["cache", "cache"]
        assert sorted(stub.calls) == ["B", "O"]  # zero new executions
        assert stub.client.stats()["counters"]["executions"] == 2
        assert [o.key for o in warm.outcomes] \
            == [o.key for o in cold.outcomes]
        # the served results are the cached entries, not re-runs
        cache = ResultCache(root=stub.cache_root)
        for outcome in warm.outcomes:
            assert cache.load(outcome.key) is not None

    def test_sets_travel_with_the_document(self, stub):
        campaign = CampaignSpec.from_dict(MINI)
        sets = {"base.seed": 7}
        report = run_campaign_via_server(stub.client, campaign,
                                         sets=sets)
        assert not report.failures
        assert report.fingerprint == campaign.expand(sets=sets).fingerprint
        assert report.fingerprint != campaign.expand().fingerprint

    def test_malformed_campaign_is_http_400(self, stub):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError, match="unknown campaign key"):
            stub.client.campaign({"name": "x", "nope": 1})
        with pytest.raises(ServiceError, match="unknown design"):
            stub.client.campaign({"name": "x",
                                  "base": {"workload": "pr"},
                                  "axes": {"design": ["ZZ"]}})
