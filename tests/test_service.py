"""Tests for the sweep service: spec resolution and key parity, the
minimal HTTP layer, server-side dedup (N concurrent clients, one
execution), byte-identical result serving, the NDJSON event stream,
the read endpoints, thin-client grid runs, and one real process-pool
end-to-end run."""

import asyncio
import json
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.sweep.runner as runner_mod
from repro.config import experiment_config
from repro.observatory.history import HistoryLedger, RunRecord
from repro.observatory.progress import ProgressEvent
from repro.service.client import (
    RemoteCache,
    RemoteLedger,
    ServiceClient,
    ServiceError,
    run_specs,
)
from repro.service.protocol import ProtocolError, read_request
from repro.service.server import run_in_thread
from repro.service.spec import ExperimentSpec, SpecError
from repro.service.worker import count_executions
from repro.sweep.cache import ResultCache
from repro.sweep.keys import SIMULATOR_VERSION, run_key


@pytest.fixture(autouse=True)
def _isolate_env(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_NO_HISTORY", raising=False)
    monkeypatch.delenv("REPRO_HISTORY_PATH", raising=False)


def _fake_result(design="B", workload="pr", makespan=100.0):
    import numpy as np

    from repro.analysis.metrics import RunResult
    from repro.arch.dram import DramStats
    from repro.arch.energy import EnergyBreakdown
    from repro.arch.noc import TrafficMeter
    from repro.arch.sram import SramStats
    from repro.core.cache.traveller import CacheStatsTotal

    return RunResult(
        design=design,
        workload=workload,
        makespan_cycles=makespan,
        active_cycles_per_core=np.array([1.0, 2.0]),
        traffic=TrafficMeter(inter_hops=7, intra_transfers=3),
        dram=DramStats(reads=11, writes=5),
        sram=SramStats(l1_accesses=100),
        cache=CacheStatsTotal(hits=4, misses=6),
        energy=EnergyBreakdown(dram_pj=42.0, static_pj=1.0),
        tasks_executed=9,
        timestamps_executed=2,
        steals=1,
        instructions=1000.0,
    )


# ----------------------------------------------------------------------
# experiment specs: validation, key parity, the version salt
# ----------------------------------------------------------------------
class TestSpec:
    def test_salt_pin(self):
        # every run key hashes this; a silent bump would cold-start
        # every cache on the team.
        assert SIMULATOR_VERSION == "abndp-sim-1"

    def test_key_parity_with_local_engine(self):
        """A served spec and the equivalent local call produce the
        same content-addressed key, byte for byte."""
        spec = ExperimentSpec.from_dict(
            {"design": "O", "workload": "pr", "mesh": "2x2"})
        local = run_key("O", "pr",
                        experiment_config().scaled(2, 2).validate())
        assert spec.run_key() == local

    def test_key_parity_with_config_overrides(self):
        import dataclasses

        spec = ExperimentSpec.from_dict({
            "design": "Sh", "workload": "kmeans",
            "config": {"scheduler": {"hybrid_alpha": 2.5},
                       "cache": {"num_camps": 7}},
        })
        cfg = experiment_config()
        cfg = cfg.with_(scheduler=dataclasses.replace(
            cfg.scheduler, hybrid_alpha=2.5))
        cfg = cfg.with_(cache=dataclasses.replace(
            cfg.cache, num_camps=7))
        assert spec.run_key() == run_key("Sh", "kmeans", cfg.validate())

    def test_engine_is_non_semantic(self):
        base = ExperimentSpec.from_dict(
            {"design": "B", "workload": "pr"}).run_key()
        for engine in ("scalar", "batched"):
            spec = ExperimentSpec.from_dict(
                {"design": "B", "workload": "pr", "engine": engine})
            assert spec.run_key() == base

    def test_faults_change_the_key(self):
        from repro.faults.schedule import make_random_schedule

        schedule = make_random_schedule(
            num_units=16, mesh_links=[(0, 1), (1, 2)],
            unit_fails=1, seed=7)
        plain = ExperimentSpec.from_dict(
            {"design": "O", "workload": "pr"})
        faulty = ExperimentSpec.from_dict(
            {"design": "O", "workload": "pr",
             "faults": schedule.to_dict()})
        assert plain.run_key() != faulty.run_key()

    def test_to_dict_round_trip(self):
        data = {"design": "Sl", "workload": "spmv", "mesh": "2x2",
                "seed": 7, "config": {"cache": {"num_camps": 7}}}
        spec = ExperimentSpec.from_dict(data)
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.run_key() == spec.run_key()

    @pytest.mark.parametrize("payload,needle", [
        ("not a dict", "JSON object"),
        ({"workload": "pr"}, "unknown design"),
        ({"design": "A", "workload": "pr"}, "unknown design"),
        ({"design": "B", "workload": "nope"}, "unknown workload"),
        ({"design": "B", "workload": "pr", "typo": 1}, "unknown spec key"),
        ({"design": "B", "workload": "pr", "seed": "x"}, "seed"),
        ({"design": "B", "workload": "pr", "faults": [1]}, "faults"),
    ])
    def test_rejects_malformed_specs(self, payload, needle):
        with pytest.raises(SpecError, match=needle):
            ExperimentSpec.from_dict(payload)

    @pytest.mark.parametrize("data,needle", [
        ({"design": "B", "workload": "pr", "mesh": "big"}, "mesh"),
        ({"design": "B", "workload": "pr",
          "config": {"nope": {}}}, "unknown config section"),
        ({"design": "B", "workload": "pr",
          "config": {"cache": {"nope": 1}}}, "unknown field"),
        ({"design": "B", "workload": "pr",
          "config": {"cache": {"style": "bogus"}}}, "config.style"),
    ])
    def test_rejects_unresolvable_specs(self, data, needle):
        with pytest.raises(SpecError, match=needle):
            ExperimentSpec.from_dict(data).resolved_config()


# ----------------------------------------------------------------------
# the minimal HTTP layer
# ----------------------------------------------------------------------
def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestProtocol:
    def test_parses_get_with_query(self):
        req = _parse(b"GET /v1/diff?a=0&b=-1&x=%20y HTTP/1.1\r\n"
                     b"Host: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/diff"
        assert req.query == {"a": "0", "b": "-1", "x": " y"}

    def test_parses_post_body_as_json(self):
        body = b'{"design": "O"}'
        req = _parse(b"POST /v1/submit HTTP/1.1\r\n"
                     b"Content-Length: " + str(len(body)).encode()
                     + b"\r\n\r\n" + body)
        assert req.json() == {"design": "O"}

    def test_clean_close_yields_none(self):
        assert _parse(b"") is None

    @pytest.mark.parametrize("raw", [
        b"NONSENSE\r\n\r\n",                          # bad request line
        b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",      # bad header
        b"GET /x HTTP/1.1\r\nContent-Length: ha\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        b"GET /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
    ])
    def test_rejects_malformed_requests(self, raw):
        with pytest.raises(ProtocolError):
            _parse(raw)

    def test_bad_json_body(self):
        req = _parse(b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot")
        with pytest.raises(ProtocolError):
            req.json()


# ----------------------------------------------------------------------
# server tests (thread mode, stubbed simulation entry point)
# ----------------------------------------------------------------------
class _Stub:
    def __init__(self, handle, client, cache_root, calls):
        self.handle = handle
        self.client = client
        self.cache_root = cache_root
        self.calls = calls
        self.exec_log = str(cache_root / "service_executions.log")


@pytest.fixture
def stub(tmp_path, monkeypatch):
    """A thread-mode server whose simulation entry point is a counting
    fake: ~0.25 s per point, design ``C`` always crashes."""
    calls = []

    def fake(design, workload, config, telemetry=None,
             fault_schedule=None):
        calls.append(design)
        if design == "C":
            raise RuntimeError("injected simulation crash")
        time.sleep(0.25)
        name = getattr(workload, "name", str(workload))
        makespan = 100.0 if design == "B" else 80.0
        return _fake_result(design=design, workload=name,
                            makespan=makespan)

    monkeypatch.setattr(runner_mod, "_live_simulate", fake)
    cache_root = tmp_path / "cache"
    handle = run_in_thread(workers=0, cache_root=str(cache_root))
    client = ServiceClient(handle.base_url, timeout=60.0)
    yield _Stub(handle, client, cache_root, calls)
    handle.stop()


SPEC = {"design": "O", "workload": "pr"}


class TestServer:
    def test_health_and_version(self, stub):
        health = stub.client.health()
        assert health["ok"] is True
        assert health["version"] == SIMULATOR_VERSION
        assert health["mode"] == "threads"

    def test_submit_then_cached_resubmit(self, stub):
        first = stub.client.submit(SPEC, wait=True)
        assert first["status"] == "done"
        assert first["key"] == ExperimentSpec.from_dict(SPEC).run_key()
        warm = stub.client.submit(SPEC, wait=True)
        assert warm["status"] == "cached"
        assert warm["key"] == first["key"]
        assert stub.calls == ["O"]  # the warm submit ran nothing
        counters = stub.client.stats()["counters"]
        assert counters["executions"] == 1
        assert counters["cache_hits"] == 1

    def test_concurrent_clients_dedupe_to_one_execution(self, stub):
        """The acceptance bar: N=4 clients submit the same spec
        concurrently; the worker-side log records exactly one
        execution and everyone receives the same key and bytes."""
        n = 4
        barrier = threading.Barrier(n)

        def submit():
            client = ServiceClient(stub.handle.base_url, timeout=60.0)
            barrier.wait()
            return client.submit(SPEC, wait=True)

        with ThreadPoolExecutor(n) as pool:
            answers = [f.result()
                       for f in [pool.submit(submit) for _ in range(n)]]

        keys = {a["key"] for a in answers}
        assert len(keys) == 1
        assert all(a["status"] in ("done", "cached") for a in answers)
        assert count_executions(stub.exec_log) == 1
        assert stub.calls == ["O"]
        counters = stub.client.stats()["counters"]
        assert counters["submissions"] == n
        assert counters["executions"] == 1
        assert counters["dedup_attached"] + counters["cache_hits"] == n - 1

        # byte-identical serving: every client's payload is the exact
        # on-disk cache entry.
        key = keys.pop()
        blobs = {stub.client.result_bytes(key) for _ in range(n)}
        assert len(blobs) == 1
        disk = ResultCache(root=stub.cache_root).path_for(key)
        assert blobs.pop() == disk.read_bytes()

    def test_event_stream_round_trips_typed_events(self, stub):
        answer = stub.client.submit(SPEC, wait=True)
        events = list(stub.client.events(answer["key"]))
        kinds = [e["event"] for e in events]
        assert kinds == ["begin", "started", "done", "end"]
        # every NDJSON line reconstructs the PR 5 typed event exactly
        for raw in events:
            event = ProgressEvent(**raw)
            assert event.to_dict() == raw
        done = events[2]
        assert done["source"] == "run"
        assert done["label"] == "O/pr"

    def test_events_for_cache_only_key(self, stub):
        # a key cached before this server ever saw it
        key = "ab" * 32
        ResultCache(root=stub.cache_root).store(key, _fake_result())
        kinds = [e["event"] for e in stub.client.events(key)]
        assert kinds == ["cached", "end"]

    def test_failed_job_reports_and_retries(self, stub):
        spec = {"design": "C", "workload": "pr"}
        answer = stub.client.submit(spec, wait=True)
        assert answer["status"] == "failed"
        assert "injected simulation crash" in answer["error"]
        kinds = [e["event"] for e in stub.client.events(answer["key"])]
        assert kinds == ["begin", "started", "failed", "end"]
        # failure is not cached: a resubmit executes again
        stub.client.submit(spec, wait=True)
        assert stub.calls == ["C", "C"]

    def test_result_endpoint_raw_bytes(self, stub):
        answer = stub.client.submit(SPEC, wait=True)
        blob = stub.client.result_bytes(answer["key"])
        disk = ResultCache(root=stub.cache_root).path_for(answer["key"])
        assert blob == disk.read_bytes()
        result = stub.client.result(answer["key"])
        assert result.design == "O"
        assert result.makespan_cycles == 80.0

    @pytest.mark.parametrize("path,method,status", [
        ("/v1/result/" + "00" * 32, "GET", 404),
        ("/v1/events/" + "00" * 32, "GET", 404),
        ("/v1/nope", "GET", 404),
        ("/other", "GET", 404),
        ("/v1/submit", "GET", 405),
        ("/v1/health", "POST", 405),
        ("/v1/diff", "GET", 400),     # missing ?a=&b=
    ])
    def test_error_statuses(self, stub, path, method, status):
        with pytest.raises(ServiceError) as err:
            stub.client._json(method, path)
        assert err.value.status == status

    def test_submit_rejects_bad_spec_as_400(self, stub):
        with pytest.raises(ServiceError) as err:
            stub.client.submit({"design": "A", "workload": "pr"})
        assert err.value.status == 400
        assert "unknown design" in str(err.value)

    def test_history_and_regress_endpoints(self, stub):
        ledger = HistoryLedger(path=stub.cache_root / "history.jsonl")
        for i in range(5):
            ledger.append(RunRecord(
                ts=float(i), design="O", workload="pr",
                source="simulate", wall_s=1.0, key=f"{i:02x}" * 32,
                makespan_cycles=100.0))
        records = stub.client.history()
        assert [r["ts"] for r in records] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(stub.client.history(limit=2)) == 2

        remote = RemoteLedger(stub.client)
        assert len(remote) == 5
        assert remote.find_key("03" * 4).ts == 3.0
        assert remote.records()[0].design == "O"

        report = stub.client.regress()
        assert "summary" in report

    def test_diff_endpoint_and_remote_adapters(self, stub):
        a = stub.client.submit({"design": "B", "workload": "pr"},
                               wait=True)
        b = stub.client.submit(SPEC, wait=True)
        ledger = HistoryLedger(path=stub.cache_root / "history.jsonl")
        for i, (key, design) in enumerate([(a["key"], "B"),
                                           (b["key"], "O")]):
            ledger.append(RunRecord(
                ts=float(i), design=design, workload="pr",
                source="serve", wall_s=1.0, key=key,
                makespan_cycles=0.0))

        payload = stub.client.diff("0", "-1")
        assert payload["identical"] is False  # makespan 100 vs 80

        # the local diff engine runs unchanged over the remote
        # observatory adapters
        from repro.observatory.diffing import diff_refs

        diff = diff_refs("0", "-1", ledger=RemoteLedger(stub.client),
                         cache=RemoteCache(stub.client))
        assert diff.to_dict()["identical"] is False

        remote_cache = RemoteCache(stub.client)
        result = remote_cache.load(a["key"])
        assert result is not None
        assert result.makespan_cycles == 100.0
        assert remote_cache.load_telemetry(a["key"]) is None  # 404 -> None

    def test_thin_client_grid_with_events(self, stub):
        specs = [ExperimentSpec(design=d, workload="pr")
                 for d in ("B", "O", "Sm")]
        seen = []
        outcomes = run_specs(stub.client, specs, events=seen.append)
        # a long-poll that lands after the job resolved is answered
        # "cached" — either way the point succeeded.
        assert all(o["status"] in ("done", "cached") for o in outcomes)
        assert all(o["result"] is not None for o in outcomes)
        assert sorted(stub.calls) == ["B", "O", "Sm"]  # one run each
        kinds = [e.event for e in seen]
        assert kinds[0] == "begin" and kinds[-1] == "end"
        assert kinds.count("done") + kinds.count("cached") == 3

    def test_warm_full_matrix_replays_under_two_seconds(self, stub):
        """Acceptance: the full 6x8 matrix, already cached, replays
        through the server in <2 s with zero worker executions."""
        from repro.simulate import ALL_DESIGNS, ALL_WORKLOADS

        cache = ResultCache(root=stub.cache_root)
        specs = []
        for d in ALL_DESIGNS:
            for w in ALL_WORKLOADS:
                spec = ExperimentSpec(design=d, workload=w)
                cache.store(spec.run_key(),
                            _fake_result(design=d, workload=w))
                specs.append(spec)
        assert len(specs) == 48

        t0 = time.monotonic()
        outcomes = run_specs(stub.client, specs)
        elapsed = time.monotonic() - t0
        assert [o["status"] for o in outcomes] == ["cached"] * 48
        assert all(o["result"] is not None for o in outcomes)
        assert elapsed < 2.0, f"warm matrix replay took {elapsed:.2f}s"
        assert count_executions(stub.exec_log) == 0
        assert stub.calls == []

    def test_shutdown_endpoint_stops_the_server(self, stub):
        assert stub.client.shutdown() == {"ok": True, "stopping": True}
        stub.handle.thread.join(timeout=10.0)
        assert not stub.handle.thread.is_alive()
        with pytest.raises(ServiceError, match="cannot reach"):
            stub.client.health()


# ----------------------------------------------------------------------
# CLI thin-client mode against a stub server
# ----------------------------------------------------------------------
class TestCliThinClient:
    def test_sweep_matrix_via_server(self, stub, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "matrix.json"
        rc = main(["sweep", "--server", stub.handle.base_url,
                   "--designs", "B,O", "--workloads", "pr",
                   "--output", str(out), "--no-progress"])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert len(payload["points"]) == 2
        assert payload["failures"] == []
        assert sorted(stub.calls) == ["B", "O"]
        text = capsys.readouterr().out
        assert "speedup over B" in text

    def test_unreachable_server_is_a_clean_cli_error(self, capsys):
        from repro.cli import main

        rc = main(["sweep", "--server", "http://127.0.0.1:1",
                   "--workloads", "pr", "--no-progress"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# real process-pool end to end (no stubs)
# ----------------------------------------------------------------------
class TestProcessPoolE2E:
    def test_four_clients_one_simulation(self, tmp_path, monkeypatch):
        """The full stack once for real: ProcessPoolExecutor workers,
        a live (small) simulation, four concurrent clients, one
        execution, shared history, byte-identical payloads."""
        cache_root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_root))
        handle = run_in_thread(workers=2)
        try:
            spec = {"design": "O", "workload": "pr", "mesh": "2x2"}
            n = 4
            barrier = threading.Barrier(n)

            def submit():
                client = ServiceClient(handle.base_url, timeout=300.0)
                barrier.wait()
                return client.submit(spec, wait=True)

            with ThreadPoolExecutor(n) as pool:
                answers = [f.result() for f in
                           [pool.submit(submit) for _ in range(n)]]

            keys = {a["key"] for a in answers}
            assert len(keys) == 1
            key = keys.pop()
            assert all(a["status"] in ("done", "cached")
                       for a in answers)
            # key parity with the local engine, through real workers
            assert key == run_key(
                "O", "pr", experiment_config().scaled(2, 2).validate())
            # the worker-side ground truth: exactly one simulation ran
            exec_log = cache_root / "service_executions.log"
            assert count_executions(str(exec_log)) == 1

            client = ServiceClient(handle.base_url, timeout=60.0)
            blob = client.result_bytes(key)
            assert blob == ResultCache(
                root=cache_root).path_for(key).read_bytes()
            result = client.result(key)
            assert result.makespan_cycles > 0

            # the worker self-recorded into the shared history ledger
            ledger = HistoryLedger(path=cache_root / "history.jsonl")
            assert any(r.key == key for r in ledger.records())

            # warm resubmit is served from the cache, no new execution
            warm = client.submit(spec, wait=True)
            assert warm["status"] == "cached"
            assert count_executions(str(exec_log)) == 1
        finally:
            handle.stop()

    def test_plain_urllib_can_talk_to_the_server(self, tmp_path,
                                                 monkeypatch):
        # the protocol is honest HTTP: a stock client needs no SDK
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        handle = run_in_thread(workers=0)
        try:
            with urllib.request.urlopen(
                    handle.base_url + "/v1/health", timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == "application/json"
                assert json.loads(resp.read())["ok"] is True
        finally:
            handle.stop()
