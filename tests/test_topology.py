"""Unit + property tests for the topology: numbering, groups, distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.topology import Topology, _morton_key
from repro.config import TopologyConfig


@pytest.fixture
def topo() -> Topology:
    return Topology(TopologyConfig(), num_groups=4)


class TestMortonKey:
    def test_origin_is_zero(self):
        assert _morton_key(0, 0) == 0

    def test_interleaving(self):
        # row bits land at odd positions, col bits at even ones.
        assert _morton_key(0, 1) == 1
        assert _morton_key(1, 0) == 2
        assert _morton_key(1, 1) == 3
        assert _morton_key(2, 0) == 8

    def test_unique_within_grid(self):
        keys = {_morton_key(r, c) for r in range(8) for c in range(8)}
        assert len(keys) == 64


class TestNumbering:
    def test_counts(self, topo):
        assert topo.num_units == 128
        assert topo.units_per_group == 32

    def test_every_unit_has_a_stack(self, topo):
        stacks = [topo.stack_of(u) for u in range(topo.num_units)]
        assert sorted(set(stacks)) == list(range(16))
        for s in range(16):
            assert stacks.count(s) == 8

    def test_units_numbered_stack_contiguous(self, topo):
        """Units are numbered first within each stack (Section 4.2)."""
        for base in range(0, topo.num_units, topo.units_per_stack):
            stacks = {topo.stack_of(u)
                      for u in range(base, base + topo.units_per_stack)}
            assert len(stacks) == 1

    def test_groups_are_contiguous_id_ranges(self, topo):
        for g in range(4):
            units = topo.units_in_group(g)
            assert np.array_equal(units, np.arange(units[0], units[-1] + 1))
            assert all(topo.group_of(int(u)) == g for u in units)

    def test_groups_are_localized_quadrants(self, topo):
        """For the 4x4 mesh with 4 groups, each group is a 2x2-stack
        quadrant (Figure 5)."""
        for g in range(4):
            stacks = {topo.stack_of(int(u)) for u in topo.units_in_group(g)}
            coords = [topo.stack_coords(s) for s in stacks]
            rows = {r for r, _ in coords}
            cols = {c for _, c in coords}
            assert len(stacks) == 4
            assert len(rows) == 2 and len(cols) == 2
            # contiguous quadrant, not scattered
            assert max(rows) - min(rows) == 1
            assert max(cols) - min(cols) == 1

    def test_group_out_of_range_raises(self, topo):
        with pytest.raises(IndexError):
            topo.units_in_group(4)


class TestDistances:
    def test_hops_zero_within_stack(self, topo):
        units = topo.units_in_stack(3)
        for a in units:
            for b in units:
                assert topo.hops_between(int(a), int(b)) == 0

    def test_hops_symmetry(self, topo):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b = rng.integers(0, 128, 2)
            assert topo.hops_between(int(a), int(b)) == topo.hops_between(int(b), int(a))

    def test_max_hops_is_diameter(self, topo):
        assert topo.inter_hops.max() == topo.diameter == 6

    def test_hop_matrix_matches_manhattan(self, topo):
        a, b = 0, 127
        ra, ca = topo.stack_coords(topo.stack_of(a))
        rb, cb = topo.stack_coords(topo.stack_of(b))
        assert topo.hops_between(a, b) == abs(ra - rb) + abs(ca - cb)

    def test_classification_helpers(self, topo):
        assert topo.is_local(5, 5)
        same_stack = topo.units_in_stack(topo.stack_of(0))
        other = int(same_stack[1]) if same_stack[0] == 0 else int(same_stack[0])
        assert topo.is_intra_stack(0, other)
        assert not topo.is_intra_stack(0, 0)

    def test_matrices_read_only(self, topo):
        with pytest.raises(ValueError):
            topo.inter_hops[0, 0] = 99


class TestGroupValidation:
    def test_indivisible_group_count_rejected(self):
        with pytest.raises(ValueError):
            Topology(TopologyConfig(), num_groups=3)

    def test_single_group_always_fine(self):
        t = Topology(TopologyConfig(), num_groups=1)
        assert t.units_per_group == 128

    def test_describe_contains_groups(self):
        text = Topology(TopologyConfig(), num_groups=4).describe()
        assert "group 0" in text and "group 3" in text


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    ups=st.sampled_from([2, 4, 8]),
)
def test_property_hop_matrix_is_a_metric(rows, cols, ups):
    """Triangle inequality and identity hold on arbitrary meshes."""
    topo = Topology(TopologyConfig(rows, cols, ups), num_groups=1)
    hops = topo.inter_hops
    n = topo.num_units
    assert (np.diag(hops) == 0).all()
    assert (hops == hops.T).all()
    rng = np.random.default_rng(0)
    for _ in range(10):
        a, b, c = rng.integers(0, n, 3)
        assert hops[a, c] <= hops[a, b] + hops[b, c]


@settings(max_examples=20, deadline=None)
@given(groups=st.sampled_from([1, 2, 4, 8, 16]))
def test_property_groups_partition_units(groups):
    topo = Topology(TopologyConfig(), num_groups=groups)
    seen = np.concatenate([topo.units_in_group(g) for g in range(groups)])
    assert sorted(seen.tolist()) == list(range(topo.num_units))
