"""Unit tests for terminal plotting and result export."""

import json

import numpy as np
import pytest

import repro
from repro.analysis.export import (
    COLUMNS,
    result_row,
    to_csv,
    to_json,
    write_csv,
    write_json,
)
from repro.analysis.plotting import (
    bar_chart,
    box_plot,
    grouped_bar_chart,
    line_series,
    sparkline,
)


class TestBarChart:
    def test_longest_bar_is_max(self):
        text = bar_chart("T", {"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        bar_a = lines[1].split()[-1]
        bar_b = lines[2].split()[-1]
        assert len(bar_b) > len(bar_a)

    def test_baseline_gridline(self):
        text = bar_chart("T", {"B": 1.0, "O": 0.4}, width=20, baseline="B")
        assert "|" in text

    def test_zero_values(self):
        text = bar_chart("T", {"a": 0.0, "b": 0.0})
        assert "0.00" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("T", {})


class TestGroupedBarChart:
    def test_shared_scale(self):
        text = grouped_bar_chart(
            "T", {"g1": {"x": 1.0}, "g2": {"x": 4.0}}, width=8
        )
        assert "g1:" in text and "g2:" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("T", {})


class TestLineSeries:
    def test_markers_and_legend(self):
        text = line_series("T", [1, 2, 3], {"up": [1, 2, 3],
                                            "down": [3, 2, 1]})
        assert "u=up" in text and "d=down" in text
        assert "u" in text

    def test_flat_series_ok(self):
        line_series("T", [1, 2], {"flat": [5.0, 5.0]})

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_series("T", [1, 2], {"x": [1.0]})


class TestBoxPlot:
    def test_markers_present(self):
        text = box_plot("T", {"d": list(range(100))})
        assert "#" in text and "=" in text and "|" in text

    def test_multiple_distributions_share_scale(self):
        text = box_plot("T", {"low": [0, 1, 2], "high": [90, 95, 100]})
        lines = [l for l in text.splitlines() if l.strip().startswith(("low", "high"))]
        low_hash = lines[0].index("#")
        high_hash = lines[1].index("#")
        assert high_hash > low_hash

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            box_plot("T", {"d": []})


class TestSparkline:
    def test_length_and_extremes(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat(self):
        assert len(set(sparkline([2.0, 2.0, 2.0]))) == 1

    def test_empty(self):
        with pytest.raises(ValueError):
            sparkline([])


@pytest.fixture(scope="module")
def small_result():
    return repro.simulate("B", "kmeans", num_points=128, iterations=1)


class TestExport:
    def test_row_covers_all_columns(self, small_result):
        row = result_row(small_result)
        assert set(row) == set(COLUMNS)

    def test_csv_roundtrip(self, small_result):
        text = to_csv([small_result, small_result])
        lines = text.strip().splitlines()
        assert lines[0].split(",")[0] == "design"
        assert len(lines) == 3

    def test_json_parses(self, small_result):
        data = json.loads(to_json([small_result]))
        assert data[0]["workload"] == "kmeans"
        assert data[0]["tasks_executed"] == 128

    def test_file_writers(self, small_result, tmp_path):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        write_csv(str(csv_path), [small_result])
        write_json(str(json_path), [small_result])
        assert csv_path.read_text().startswith("design,")
        assert json.loads(json_path.read_text())
