"""Cross-design integration tests: the paper's claims as invariants.

These run small-but-meaningful instances and check the *relationships*
the paper builds its argument on, independent of the benchmark suite.
"""

import dataclasses

import numpy as np
import pytest

import repro
from repro.config import CampMapping, experiment_config
from repro.workloads.pagerank import PageRankWorkload


@pytest.fixture(scope="module")
def pr_results():
    wl = repro.make_workload("pr", num_vertices=1024, iterations=3)
    return repro.compare_designs(repro.ALL_DESIGNS, wl)


class TestTradeoffStructure:
    """Figure 2's tradeoff, as stable invariants."""

    def test_colocation_designs_do_not_add_hops(self, pr_results):
        base = pr_results["B"]
        assert pr_results["Sm"].inter_hops <= base.inter_hops * 1.02

    def test_stealing_trades_hops_for_balance(self, pr_results):
        sm, sl = pr_results["Sm"], pr_results["Sl"]
        assert sl.load_imbalance() < sm.load_imbalance()
        assert sl.inter_hops >= sm.inter_hops

    def test_cache_reduces_hops_without_balancing(self, pr_results):
        base, c = pr_results["B"], pr_results["C"]
        assert c.inter_hops < base.inter_hops
        # C inherits Sm's placement, so no balance improvement.
        assert c.load_imbalance() >= 0.8 * pr_results["Sm"].load_imbalance()

    def test_full_design_keeps_cache_benefit_and_balance(self, pr_results):
        base, o, sl = pr_results["B"], pr_results["O"], pr_results["Sl"]
        assert o.inter_hops < sl.inter_hops
        assert o.load_imbalance() < pr_results["Sm"].load_imbalance()


class TestCacheBehaviour:
    def test_hits_accumulate_within_phase_and_reset_at_barrier(self):
        """Bulk invalidation means insertions recur every phase."""
        wl = PageRankWorkload(num_vertices=1024, iterations=1)
        one = repro.simulate("C", wl)
        wl3 = PageRankWorkload(num_vertices=1024, iterations=3)
        three = repro.simulate("C", wl3)
        # Roughly one cold-fill wave per phase.
        assert three.cache.insertions > 2 * one.cache.insertions

    def test_bypass_filters_insertions_not_hits(self):
        wl = PageRankWorkload(num_vertices=1024, iterations=2)
        cfg_no = experiment_config()
        cfg_no = cfg_no.with_(cache=dataclasses.replace(
            cfg_no.cache, bypass_probability=0.0)).validate()
        cfg_heavy = experiment_config()
        cfg_heavy = cfg_heavy.with_(cache=dataclasses.replace(
            cfg_heavy.cache, bypass_probability=0.8)).validate()
        r_no = repro.simulate("C", wl, cfg_no)
        r_heavy = repro.simulate("C", wl, cfg_heavy)
        assert r_heavy.cache.bypasses > r_no.cache.bypasses
        assert r_heavy.cache.insertions < r_no.cache.insertions
        # Hot lines still get cached after a few trials: hits survive.
        assert r_heavy.cache.hit_rate > 0.25

    def test_camp_mapping_variant_changes_placement_not_answers(self):
        wl = PageRankWorkload(num_vertices=512, iterations=2)
        cfg = experiment_config()
        cfg_id = cfg.with_(cache=dataclasses.replace(
            cfg.cache, camp_mapping=CampMapping.IDENTICAL)).validate()
        repro.simulate("O", wl, cfg, verify=True)
        repro.simulate("O", wl, cfg_id, verify=True)


class TestSchedulingKnobs:
    def test_alpha_zero_is_distance_only(self):
        """With alpha=0 the hybrid ignores load entirely; hotspots
        persist like Sm's."""
        wl = repro.make_workload("knn", num_points=2048, num_queries=512)
        cfg0 = experiment_config()
        cfg0 = cfg0.with_(scheduler=dataclasses.replace(
            cfg0.scheduler, hybrid_alpha=0.0)).validate()
        r0 = repro.simulate("Sh", wl, cfg0)
        r3 = repro.simulate("Sh", wl)
        assert r3.load_imbalance() < r0.load_imbalance()

    def test_steal_overhead_discourages_steals(self):
        wl = repro.make_workload("knn", num_points=2048, num_queries=512)
        cheap = experiment_config()
        cheap = cheap.with_(scheduler=dataclasses.replace(
            cheap.scheduler, steal_overhead_cycles=0.0)).validate()
        dear = experiment_config()
        dear = dear.with_(scheduler=dataclasses.replace(
            dear.scheduler, steal_overhead_cycles=1e8)).validate()
        r_cheap = repro.simulate("Sl", wl, cheap)
        r_dear = repro.simulate("Sl", wl, dear)
        assert r_dear.steals == 0
        assert r_cheap.steals > 0

    def test_contention_model_penalizes_hot_homes(self):
        """With the DRAM service model on, the same run takes longer
        and reports queueing (an ablation of our substrate model)."""
        from repro.config import MemoryConfig
        from repro.core.system import build_system

        wl = PageRankWorkload(num_vertices=1024, iterations=2)
        cfg_on = experiment_config(memory=MemoryConfig(service_ns=4.0))
        sys_on = build_system("B", cfg_on)
        state = wl.setup(sys_on)
        sys_on.executor.run(wl.root_tasks(state), state=state,
                            on_barrier=wl.on_barrier)
        assert sys_on.memory_system.total_queue_delay_ns > 0

        r_off = repro.simulate("B", wl)
        r_on = repro.simulate("B", wl, cfg_on)
        assert r_on.makespan_cycles > r_off.makespan_cycles
