"""Integration tests for the bulk-synchronous executor."""

import numpy as np
import pytest

import repro
from repro.config import experiment_config
from repro.core.system import build_system
from repro.runtime.executor import _interleave_by_spawner
from repro.runtime.task import Task, TaskHint


def small_system(design="B"):
    return build_system(design, experiment_config().scaled(2, 2))


def make_task(system, unit=0, ts=0, compute=100.0, spawner=0):
    addr = unit * system.memory_map.unit_capacity
    return Task(
        func=lambda ctx: None,
        timestamp=ts,
        hint=TaskHint(addresses=np.array([addr])),
        compute_cycles=compute,
        spawner_unit=spawner,
    )


class TestBasicExecution:
    def test_empty_run(self):
        system = small_system()
        trace = system.executor.run([])
        assert trace.tasks_executed == 0
        assert trace.makespan_cycles == 0.0

    def test_single_task(self):
        system = small_system()
        hits = []
        t = make_task(system)
        t.func = lambda ctx: hits.append(ctx.current_unit)
        trace = system.executor.run([t])
        assert trace.tasks_executed == 1
        assert hits == [t.assigned_unit]
        assert trace.makespan_cycles > t.compute_cycles

    def test_task_functions_really_run(self):
        system = small_system()
        acc = {"sum": 0}

        def body(ctx, x):
            acc["sum"] += x

        tasks = []
        for i in range(10):
            t = make_task(system, unit=i % 4)
            t.func = body
            t.args = (i,)
            tasks.append(t)
        system.executor.run(tasks)
        assert acc["sum"] == sum(range(10))

    def test_timestamps_execute_in_order(self):
        system = small_system()
        order = []

        def body(ctx, ts):
            order.append(ts)

        tasks = []
        for ts in (2, 0, 1):
            t = make_task(system, ts=ts)
            t.func = body
            t.args = (ts,)
            tasks.append(t)
        trace = system.executor.run(tasks)
        assert order == [0, 1, 2]
        assert trace.timestamps_executed == 3

    def test_children_run_in_later_phase(self):
        system = small_system()
        log = []

        def child(ctx):
            log.append(("child", ctx.timestamp))

        def parent(ctx):
            log.append(("parent", ctx.timestamp))
            ctx.enqueue_task(child, ctx.timestamp + 1, TaskHint.empty())

        t = make_task(system)
        t.func = parent
        system.executor.run([t])
        assert log == [("parent", 0), ("child", 1)]

    def test_max_timestamps_truncates(self):
        system = small_system()

        def self_replicating(ctx):
            ctx.enqueue_task(self_replicating, ctx.timestamp + 1,
                             TaskHint.empty())

        t = make_task(system)
        t.func = self_replicating
        trace = system.executor.run([t], max_timestamps=3)
        assert trace.timestamps_executed == 3

    def test_on_barrier_called_per_phase(self):
        system = small_system()
        barriers = []
        tasks = [make_task(system, ts=ts) for ts in (0, 1)]
        system.executor.run(
            tasks, on_barrier=lambda ts, state: barriers.append(ts)
        )
        assert barriers == [0, 1]

    def test_on_barrier_can_emit_next_phase(self):
        """Wave-synchronous workloads return new tasks at the barrier."""
        system = small_system()
        executed = []

        def body(ctx, tag):
            executed.append(tag)

        def barrier(ts, state):
            if ts == 0:
                t = make_task(system, ts=1)
                t.func = body
                t.args = ("wave2",)
                return [t]
            return None

        t0 = make_task(system)
        t0.func = body
        t0.args = ("wave1",)
        trace = system.executor.run([t0], on_barrier=barrier)
        assert executed == ["wave1", "wave2"]
        assert trace.timestamps_executed == 2


class TestAccounting:
    def test_makespan_accumulates_barrier_costs(self):
        system = small_system()
        tasks = [make_task(system, ts=ts, compute=10.0) for ts in range(3)]
        for t in tasks:
            t.func = lambda ctx: None
        trace = system.executor.run(tasks)
        assert trace.makespan_cycles >= 3 * system.executor.BARRIER_CYCLES

    def test_instructions_summed(self):
        system = small_system()
        tasks = [make_task(system, compute=50.0) for _ in range(4)]
        trace = system.executor.run(tasks)
        assert trace.instructions == pytest.approx(200.0)

    def test_active_cycles_recorded_per_core(self):
        system = small_system()
        tasks = [make_task(system, unit=u) for u in range(4)]
        system.executor.run(tasks)
        total = sum(u.active_cycles for u in system.units)
        assert total > 0
        per_core = np.concatenate([u.core_active for u in system.units])
        assert per_core.sum() == pytest.approx(total)

    def test_parallelism_beats_serial_sum(self):
        """Many equal tasks across units finish far faster than their
        serial sum."""
        system = small_system()
        tasks = [make_task(system, unit=u % 32, compute=500.0)
                 for u in range(64)]
        trace = system.executor.run(tasks)
        serial = sum(t.compute_cycles for t in tasks)
        assert trace.makespan_cycles < serial / 4

    def test_two_cores_overlap_within_unit(self):
        system = small_system()
        # Two tasks pinned to one unit: they run on the two cores.
        tasks = [make_task(system, unit=3, compute=1000.0) for _ in range(2)]
        trace = system.executor.run(tasks)
        unit = system.units[tasks[0].assigned_unit]
        assert unit.core_active[0] > 0 and unit.core_active[1] > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        wl = repro.make_workload("pr", num_vertices=256, iterations=2)
        a = repro.simulate("O", wl)
        b = repro.simulate("O", wl)
        assert a.makespan_cycles == b.makespan_cycles
        assert a.inter_hops == b.inter_hops
        assert a.cache.hits == b.cache.hits


class TestInterleave:
    def test_round_robins_spawners(self):
        tasks = []
        for spawner in (0, 0, 0, 1, 1, 2):
            t = Task(func=lambda c: None, timestamp=0,
                     hint=TaskHint.empty(), spawner_unit=spawner)
            tasks.append(t)
        order = [t.spawner_unit for t in _interleave_by_spawner(tasks)]
        assert order == [0, 1, 2, 0, 1, 0]

    def test_preserves_all_tasks(self):
        tasks = [
            Task(func=lambda c: None, timestamp=0, hint=TaskHint.empty(),
                 spawner_unit=i % 5)
            for i in range(23)
        ]
        out = _interleave_by_spawner(tasks)
        assert sorted(t.task_id for t in out) == sorted(
            t.task_id for t in tasks
        )
