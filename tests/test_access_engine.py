"""Cross-engine parity: batched and scalar access engines must agree.

The batched engine reorganizes the hot path (fused kernels, memoized
camp tables, bulk counter flushes) but every stateful step — cache
probes and installs with their RNG draws, DRAM service clocks, float
accumulations — runs in the exact per-line order of the scalar
reference path.  These tests pin that contract: for the same seed the
two engines must produce **bit-identical** RunResult JSON (makespans,
latencies, hop counts, hit rates, energy) on every design, on multiple
workloads, and under an injected fault schedule.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.arch.topology import Topology
from repro.bench import engine_config
from repro.config import experiment_config
from repro.faults import make_random_schedule
from repro.sweep.serialize import result_to_dict

ENGINES = ("scalar", "batched")


def _canonical(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


@pytest.fixture(scope="module")
def base_config():
    """A 2x2-stack machine: small enough to run every design under
    both engines, big enough to exercise camps, stealing, and the
    hybrid scheduler's exchange machinery."""
    return experiment_config().scaled(2, 2)


@pytest.fixture(scope="module")
def workloads():
    """Two access patterns: an iterative graph kernel (power-law reuse,
    persistent per-vertex hints) and a pointwise query workload."""
    return {
        "pr": repro.make_workload("pr", num_vertices=1024, iterations=2),
        "knn": repro.make_workload("knn", num_points=1024),
    }


@pytest.mark.parametrize("design", repro.ALL_DESIGNS)
@pytest.mark.parametrize("workload_name", ["pr", "knn"])
def test_engines_bit_identical(design, workload_name, base_config,
                               workloads):
    payloads = {
        engine: _canonical(repro.simulate(
            design, workloads[workload_name],
            config=engine_config(engine, base_config),
        ))
        for engine in ENGINES
    }
    assert payloads["scalar"] == payloads["batched"], (
        f"engines disagree on {design}/{workload_name}"
    )


def test_engines_bit_identical_under_faults(base_config, workloads):
    """The batched engine must also match when a fault schedule is
    active — the kernel falls back to the scalar flow around fault
    state, and recovery (cache invalidation, re-execution, remaps)
    must not depend on the engine."""
    topo = Topology(base_config.topology,
                    num_groups=base_config.cache.num_groups())
    schedule = make_random_schedule(
        topo.num_units, topo.mesh_links(),
        unit_fails=2, link_fails=1, vault_slowdowns=1,
        seed=base_config.seed,
    )
    payloads = {}
    for engine in ENGINES:
        result = repro.simulate(
            "O", workloads["pr"], config=engine_config(engine, base_config),
            fault_schedule=schedule,
        )
        assert result.resilience is not None
        payloads[engine] = _canonical(result)
    assert payloads["scalar"] == payloads["batched"]


def test_cache_keys_and_cached_json_engine_invariant(
        tmp_path, monkeypatch, base_config, workloads):
    """Sweep-cache hygiene: ``access_engine`` is a non-semantic config
    field, so both engines must address the **same** cache entry and
    serialize the **same** bytes into it — a cache populated under the
    scalar engine replays verbatim under the batched default.  (The
    comparison covers the serialized result; the entry's ``meta`` side
    carries a wall-clock creation stamp by design.)"""
    from repro.sweep.cache import ResultCache
    from repro.sweep.keys import run_key

    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    workload = workloads["pr"]
    keys = {}
    blobs = {}
    for engine in ENGINES:
        cfg = engine_config(engine, base_config)
        keys[engine] = run_key("O", workload, cfg)
        cache = ResultCache(root=tmp_path / engine)
        result = repro.simulate("O", workload, config=cfg)
        cache.store(keys[engine], result)
        stored = json.loads(cache.path_for(keys[engine]).read_text())
        blobs[engine] = json.dumps(
            stored["result"], sort_keys=True
        ).encode()
    assert keys["scalar"] == keys["batched"]
    assert blobs["scalar"] == blobs["batched"]


def test_version_salt_not_bumped_by_engine_work():
    """The batched engine changed no simulation outcome (see the
    parity tests above), so the global cache-invalidation salt must
    stay put: every scalar-era cached result remains valid.  Bump the
    salt — and this pin — only together with a change that alters
    RunResults."""
    from repro.sweep.keys import SIMULATOR_VERSION

    assert SIMULATOR_VERSION == "abndp-sim-1"


def test_scalar_engine_selectable():
    """The reference path stays selectable via MemoryConfig."""
    cfg = engine_config("scalar", experiment_config().scaled(2, 2))
    assert cfg.memory.access_engine == "scalar"
    with pytest.raises(ValueError):
        engine_config("vectorised")
