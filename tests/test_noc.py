"""Unit tests for the interconnect model: costs, latency, traffic, energy."""

import numpy as np
import pytest

from repro.arch.noc import AccessClass, Interconnect, TrafficMeter
from repro.arch.topology import Topology
from repro.config import MemoryConfig, NocConfig, TopologyConfig


@pytest.fixture
def noc() -> Interconnect:
    topo = Topology(TopologyConfig(), num_groups=4)
    return Interconnect(topo, NocConfig(), MemoryConfig())


def _pick_pairs(noc):
    """(local, intra-stack, inter-stack) unit pairs."""
    topo = noc.topology
    local = (0, 0)
    stack_units = topo.units_in_stack(topo.stack_of(0))
    intra = (0, int(stack_units[1]))
    inter = (0, 127)
    assert topo.hops_between(*inter) > 0
    return local, intra, inter


class TestClassification:
    def test_three_classes(self, noc):
        local, intra, inter = _pick_pairs(noc)
        assert noc.classify(*local) is AccessClass.LOCAL
        assert noc.classify(*intra) is AccessClass.INTRA_STACK
        assert noc.classify(*inter) is AccessClass.INTER_STACK


class TestCostMatrix:
    def test_cost_values_per_class(self, noc):
        local, intra, inter = _pick_pairs(noc)
        cfg = noc.noc
        assert noc.distance_cost(*local) == cfg.d_local
        assert noc.distance_cost(*intra) == cfg.d_intra
        hops = noc.topology.hops_between(*inter)
        assert noc.distance_cost(*inter) == cfg.d_inter * hops

    def test_cost_matrix_symmetry(self, noc):
        m = noc.cost_matrix
        assert np.allclose(m, m.T)

    def test_read_only(self, noc):
        with pytest.raises(ValueError):
            noc.cost_matrix[0, 0] = 1.0


class TestLatency:
    def test_local_latency_zero(self, noc):
        assert noc.one_way_latency_ns(3, 3) == 0.0

    def test_intra_latency_is_one_crossbar_hop(self, noc):
        _, intra, _ = _pick_pairs(noc)
        assert noc.one_way_latency_ns(*intra) == 1.5

    def test_inter_latency_includes_both_crossbars(self, noc):
        _, _, inter = _pick_pairs(noc)
        hops = noc.topology.hops_between(*inter)
        expected = 2 * 1.5 + hops * 10.0
        assert noc.one_way_latency_ns(*inter) == pytest.approx(expected)

    def test_round_trip_is_twice_one_way(self, noc):
        _, _, inter = _pick_pairs(noc)
        assert noc.round_trip_latency_ns(*inter) == pytest.approx(
            2 * noc.one_way_latency_ns(*inter)
        )


class TestTrafficAccounting:
    def test_local_transfer_moves_no_bits(self, noc):
        meter = TrafficMeter()
        noc.record_transfer(meter, 5, 5)
        assert meter.local_accesses == 1
        assert meter.inter_bits == 0 and meter.intra_bits == 0

    def test_intra_transfer(self, noc):
        meter = TrafficMeter()
        _, intra, _ = _pick_pairs(noc)
        noc.record_transfer(meter, *intra)
        assert meter.intra_transfers == 1
        assert meter.intra_bits == 512
        assert meter.inter_hops == 0

    def test_inter_transfer_counts_hops_times_bits(self, noc):
        meter = TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        hops = noc.topology.hops_between(*inter)
        noc.record_transfer(meter, *inter)
        assert meter.inter_hops == hops
        assert meter.inter_bits == 512 * hops
        # endpoints also cross the two stack crossbars
        assert meter.intra_transfers == 2

    def test_round_trip_counts_request_and_response(self, noc):
        meter = TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        hops = noc.topology.hops_between(*inter)
        noc.record_round_trip(meter, *inter, request_bits=128)
        assert meter.inter_hops == 2 * hops
        assert meter.inter_bits == (128 + 512) * hops
        assert meter.messages == 2

    def test_meter_merge_and_reset(self, noc):
        a, b = TrafficMeter(), TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        noc.record_transfer(a, *inter)
        noc.record_transfer(b, *inter)
        a.merge(b)
        assert a.inter_hops == 2 * noc.topology.hops_between(*inter)
        a.reset()
        assert a.inter_hops == 0 and a.messages == 0


class TestEnergy:
    def test_energy_formula(self, noc):
        meter = TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        noc.record_transfer(meter, *inter)
        expected = meter.inter_bits * 4.0 + meter.intra_bits * 0.4
        assert noc.energy_pj(meter) == pytest.approx(expected)

    def test_no_traffic_no_energy(self, noc):
        assert noc.energy_pj(TrafficMeter()) == 0.0
