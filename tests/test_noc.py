"""Unit tests for the interconnect model: costs, latency, traffic, energy."""

import numpy as np
import pytest

from repro.arch.noc import AccessClass, Interconnect, TrafficMeter
from repro.arch.topology import Topology
from repro.config import MemoryConfig, NocConfig, TopologyConfig


@pytest.fixture
def noc() -> Interconnect:
    topo = Topology(TopologyConfig(), num_groups=4)
    return Interconnect(topo, NocConfig(), MemoryConfig())


def _pick_pairs(noc):
    """(local, intra-stack, inter-stack) unit pairs."""
    topo = noc.topology
    local = (0, 0)
    stack_units = topo.units_in_stack(topo.stack_of(0))
    intra = (0, int(stack_units[1]))
    inter = (0, 127)
    assert topo.hops_between(*inter) > 0
    return local, intra, inter


class TestClassification:
    def test_three_classes(self, noc):
        local, intra, inter = _pick_pairs(noc)
        assert noc.classify(*local) is AccessClass.LOCAL
        assert noc.classify(*intra) is AccessClass.INTRA_STACK
        assert noc.classify(*inter) is AccessClass.INTER_STACK


class TestCostMatrix:
    def test_cost_values_per_class(self, noc):
        local, intra, inter = _pick_pairs(noc)
        cfg = noc.noc
        assert noc.distance_cost(*local) == cfg.d_local
        assert noc.distance_cost(*intra) == cfg.d_intra
        hops = noc.topology.hops_between(*inter)
        assert noc.distance_cost(*inter) == cfg.d_inter * hops

    def test_cost_matrix_symmetry(self, noc):
        m = noc.cost_matrix
        assert np.allclose(m, m.T)

    def test_read_only(self, noc):
        with pytest.raises(ValueError):
            noc.cost_matrix[0, 0] = 1.0


class TestLatency:
    def test_local_latency_zero(self, noc):
        assert noc.one_way_latency_ns(3, 3) == 0.0

    def test_intra_latency_is_one_crossbar_hop(self, noc):
        _, intra, _ = _pick_pairs(noc)
        assert noc.one_way_latency_ns(*intra) == 1.5

    def test_inter_latency_includes_both_crossbars(self, noc):
        _, _, inter = _pick_pairs(noc)
        hops = noc.topology.hops_between(*inter)
        expected = 2 * 1.5 + hops * 10.0
        assert noc.one_way_latency_ns(*inter) == pytest.approx(expected)

    def test_round_trip_is_twice_one_way(self, noc):
        _, _, inter = _pick_pairs(noc)
        assert noc.round_trip_latency_ns(*inter) == pytest.approx(
            2 * noc.one_way_latency_ns(*inter)
        )


class TestTrafficAccounting:
    def test_local_transfer_moves_no_bits(self, noc):
        meter = TrafficMeter()
        noc.record_transfer(meter, 5, 5)
        assert meter.local_accesses == 1
        assert meter.inter_bits == 0 and meter.intra_bits == 0

    def test_intra_transfer(self, noc):
        meter = TrafficMeter()
        _, intra, _ = _pick_pairs(noc)
        noc.record_transfer(meter, *intra)
        assert meter.intra_transfers == 1
        assert meter.intra_bits == 512
        assert meter.inter_hops == 0

    def test_inter_transfer_counts_hops_times_bits(self, noc):
        meter = TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        hops = noc.topology.hops_between(*inter)
        noc.record_transfer(meter, *inter)
        assert meter.inter_hops == hops
        assert meter.inter_bits == 512 * hops
        # endpoints also cross the two stack crossbars
        assert meter.intra_transfers == 2

    def test_round_trip_counts_request_and_response(self, noc):
        meter = TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        hops = noc.topology.hops_between(*inter)
        noc.record_round_trip(meter, *inter, request_bits=128)
        assert meter.inter_hops == 2 * hops
        assert meter.inter_bits == (128 + 512) * hops
        assert meter.messages == 2

    def test_meter_merge_and_reset(self, noc):
        a, b = TrafficMeter(), TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        noc.record_transfer(a, *inter)
        noc.record_transfer(b, *inter)
        a.merge(b)
        assert a.inter_hops == 2 * noc.topology.hops_between(*inter)
        a.reset()
        assert a.inter_hops == 0 and a.messages == 0


class TestEnergy:
    def test_energy_formula(self, noc):
        meter = TrafficMeter()
        _, _, inter = _pick_pairs(noc)
        noc.record_transfer(meter, *inter)
        expected = meter.inter_bits * 4.0 + meter.intra_bits * 0.4
        assert noc.energy_pj(meter) == pytest.approx(expected)

    def test_no_traffic_no_energy(self, noc):
        assert noc.energy_pj(TrafficMeter()) == 0.0


class TestLinkFaults:
    """Fault-injection: rerouting, unreachability, metering, recovery."""

    def _stack_units(self, noc, stack):
        return [int(u) for u in noc.topology.units_in_stack(stack)]

    def test_healthy_mesh_reports_no_faults(self, noc):
        assert not noc.has_link_faults
        assert noc.is_reachable(0, 127)
        assert noc.effective_hops(0, 127) == noc.topology.hops_between(0, 127)

    def test_dead_link_forces_a_detour(self, noc):
        u0 = self._stack_units(noc, 0)[0]
        u1 = self._stack_units(noc, 1)[0]
        healthy = noc.effective_hops(u0, u1)
        assert healthy == 1
        noc.set_link_faults([(0, 1)])
        assert noc.has_link_faults
        assert noc.is_reachable(u0, u1)          # detour exists
        assert noc.effective_hops(u0, u1) == 3   # e.g. 0 -> 4 -> 5 -> 1
        route = noc.route_stacks(0, 1)
        assert route[0] == 0 and route[-1] == 1
        assert (0, 1) not in set(zip(route, route[1:]))
        assert noc.one_way_latency_ns(u0, u1) == pytest.approx(
            2 * noc.noc.intra_hop_ns + 3 * noc.noc.inter_hop_ns
        )

    def test_cost_matrix_views_update_in_place(self, noc):
        view = noc.cost_matrix  # what a SchedulerContext holds
        u0 = self._stack_units(noc, 0)[0]
        u1 = self._stack_units(noc, 1)[0]
        healthy_cost = float(view[u0, u1])
        noc.set_link_faults([(0, 1)])
        assert float(view[u0, u1]) > healthy_cost
        noc.clear_link_faults()
        assert float(view[u0, u1]) == healthy_cost

    def test_isolated_stack_is_unreachable(self, noc):
        # stack 0 (corner) only connects through (0, 1) and (0, 4).
        noc.set_link_faults([(0, 1), (0, 4)])
        u0 = self._stack_units(noc, 0)[0]
        far = self._stack_units(noc, 5)[0]
        assert not noc.is_reachable(u0, far)
        assert noc.effective_hops(u0, far) == -1
        assert noc.one_way_latency_ns(u0, far) == float("inf")
        assert noc.route_stacks(0, 5) is None
        # units inside the isolated stack still talk to each other
        u0b = self._stack_units(noc, 0)[1]
        assert noc.is_reachable(u0, u0b)
        assert noc.one_way_latency_ns(u0, u0b) == noc.noc.intra_hop_ns

    def test_unreachable_transfer_moves_no_mesh_bits(self, noc):
        from repro.arch.noc import TrafficMeter

        noc.set_link_faults([(0, 1), (0, 4)])
        meter = TrafficMeter()
        u0 = self._stack_units(noc, 0)[0]
        far = self._stack_units(noc, 5)[0]
        noc.record_transfer(meter, u0, far, bits=1024)
        assert meter.messages == 1
        assert meter.inter_hops == 0 and meter.inter_bits == 0
        assert meter.intra_bits == 0

    def test_degraded_link_costs_more_or_detours(self, noc):
        u0 = self._stack_units(noc, 0)[0]
        u1 = self._stack_units(noc, 1)[0]
        healthy = noc.one_way_latency_ns(u0, u1)
        noc.set_link_faults([], degraded={(0, 1): 4.0})
        slow = noc.one_way_latency_ns(u0, u1)
        assert slow > healthy
        # never worse than the best detour around the slow link (3 hops)
        assert slow <= 2 * noc.noc.intra_hop_ns + 3 * noc.noc.inter_hop_ns

    def test_link_meter_attributes_around_dead_links(self, noc):
        meter = noc.enable_link_metering()
        u0 = self._stack_units(noc, 0)[0]
        u1 = self._stack_units(noc, 1)[0]
        noc.set_link_faults([(0, 1)])
        from repro.arch.noc import TrafficMeter

        tm = TrafficMeter()
        noc.record_transfer(tm, u0, u1, bits=128)
        assert meter.link_flits, "rerouted traffic was attributed"
        for (a, b) in meter.link_flits:
            assert {a, b} != {0, 1}, "dead link accumulated flits"
        assert meter.total_link_flits() == 3  # one flit over each detour hop

    def test_clear_restores_healthy_mesh(self, noc):
        u0 = self._stack_units(noc, 0)[0]
        u1 = self._stack_units(noc, 1)[0]
        healthy_latency = noc.one_way_latency_ns(u0, u1)
        noc.set_link_faults([(0, 1)], degraded={(1, 2): 2.0})
        noc.clear_link_faults()
        assert not noc.has_link_faults
        assert noc.one_way_latency_ns(u0, u1) == healthy_latency
        assert noc.effective_hops(u0, u1) == 1
        if noc.link_meter is not None:
            assert noc.link_meter.router is None

    def test_all_one_multipliers_mean_no_faults(self, noc):
        noc.set_link_faults([], degraded={(0, 1): 1.0})
        assert not noc.has_link_faults
