"""Unit tests for the end-to-end memory access flow (Section 4.4)."""

import dataclasses

import numpy as np
import pytest

from repro.config import CacheStyle, MemoryConfig, default_config
from repro.core.system import NdpSystem, build_system


def make_system(design="O", mesh=(2, 2), service_ns=0.0) -> NdpSystem:
    cfg = default_config().scaled(*mesh)
    cfg = cfg.with_(memory=dataclasses.replace(cfg.memory,
                                               service_ns=service_ns))
    return build_system(design, cfg)


def line_in_unit(system, unit: int, index: int = 0) -> int:
    addr = unit * system.memory_map.unit_capacity + index * 64
    return system.memory_map.line_of(addr)


class TestCachelessAccess:
    def test_local_access_costs_dram_only(self):
        system = make_system("B")
        ms = system.memory_system
        line = line_in_unit(system, 5)
        latency = ms.access(5, line)
        assert latency == pytest.approx(34.0)
        assert ms.dram_stats.reads == 1

    def test_remote_access_adds_round_trip(self):
        system = make_system("B")
        ms = system.memory_system
        line = line_in_unit(system, 31)
        latency = ms.access(0, line)
        rt = system.interconnect.round_trip_latency_ns(0, 31)
        assert latency == pytest.approx(rt + 34.0)
        assert ms.traffic.inter_hops > 0

    def test_repeat_access_hits_l1(self):
        system = make_system("B")
        ms = system.memory_system
        line = line_in_unit(system, 31)
        first = ms.access(0, line)
        second = ms.access(0, line)
        assert second < first
        assert second == pytest.approx(system.sram.l1_hit_ns)
        assert ms.dram_stats.reads == 1  # no second DRAM read


class TestTravellerAccess:
    def test_home_nearest_goes_direct(self):
        system = make_system("O")
        ms = system.memory_system
        line = line_in_unit(system, 7)
        ms.access(7, line)  # requester == home
        stats = ms.cache_stats()
        assert stats.home_direct == 1
        assert stats.probes == 0

    def test_camp_miss_then_hit(self):
        system = make_system("O")
        cfg = system.config
        # Force insertion (no bypass) for determinism.
        for cache in ms_caches(system):
            cache._insertion.bypass_probability = 0.0
        ms = system.memory_system
        mapper = system.camp_mapper
        # Find a (line, requester) pair whose nearest location is a camp.
        line, requester, camp = _find_camp_probe(system)
        lat_miss = ms.access(requester, line)
        assert ms.cache_stats().misses == 1
        assert ms.caches[camp].contains(line)
        # A second requester near the same camp now hits.
        system.units[requester].l1.invalidate_all()
        system.units[requester].prefetch.invalidate_all()
        lat_hit = ms.access(requester, line)
        assert ms.cache_stats().hits == 1
        assert lat_hit < lat_miss

    def test_miss_pays_more_than_cacheless_direct(self):
        """The probe detour costs extra on a miss."""
        system = make_system("O")
        for cache in ms_caches(system):
            cache._insertion.bypass_probability = 1.0  # never insert
        line, requester, _ = _find_camp_probe(system)
        lat = system.memory_system.access(requester, line)
        home = system.memory_map.home_of_line(line)
        direct = (system.interconnect.round_trip_latency_ns(requester, home)
                  + 34.0)
        assert lat > direct - 1e-9

    def test_writes_bypass_cache_and_cost_nothing(self):
        system = make_system("O")
        ms = system.memory_system
        line = line_in_unit(system, 9)
        assert ms.write(0, line) == 0.0
        assert ms.dram_stats.writes == 1
        assert ms.cache_stats().probes == 0

    def test_end_timestamp_invalidates_all(self):
        system = make_system("O")
        for cache in ms_caches(system):
            cache._insertion.bypass_probability = 0.0
        line, requester, camp = _find_camp_probe(system)
        ms = system.memory_system
        ms.access(requester, line)
        assert ms.caches[camp].occupancy() == 1
        ms.end_timestamp()
        assert ms.caches[camp].occupancy() == 0
        assert system.units[requester].l1.occupancy() == 0


class TestDramContention:
    def test_queue_delay_when_channel_busy(self):
        system = make_system("B", service_ns=5.0)
        ms = system.memory_system
        line = line_in_unit(system, 3)
        lines = [line_in_unit(system, 3, i) for i in range(10)]
        # Ten accesses arriving at the same instant serialize.
        total = sum(ms.access(0, ln, now_ns=0.0) for ln in lines)
        assert ms.total_queue_delay_ns > 0

    def test_no_contention_when_disabled(self):
        system = make_system("B", service_ns=0.0)
        ms = system.memory_system
        lines = [line_in_unit(system, 3, i) for i in range(10)]
        for ln in lines:
            ms.access(0, ln, now_ns=0.0)
        assert ms.total_queue_delay_ns == 0.0

    def test_writes_do_not_block_reads(self):
        system = make_system("B", service_ns=5.0)
        ms = system.memory_system
        for i in range(20):
            ms.write(0, line_in_unit(system, 3, i), now_ns=0.0)
        delay_before = ms.total_queue_delay_ns
        ms.access(0, line_in_unit(system, 3, 99), now_ns=0.0)
        assert ms.total_queue_delay_ns == delay_before


class TestDramTagStyle:
    def test_probe_pays_dram_tag_access(self):
        system = make_system("O")
        cfg = system.config.with_(
            cache=dataclasses.replace(system.config.cache,
                                      style=CacheStyle.DRAM_TAG)
        )
        system2 = NdpSystem(cfg, design_name="O")
        line, requester, _ = _find_camp_probe(system2)
        system2.memory_system.access(requester, line)
        assert system2.memory_system.dram_stats.tag_accesses_in_dram >= 1


class TestSramStyle:
    def test_hit_avoids_dram(self):
        system = make_system("O")
        cfg = system.config.with_(
            cache=dataclasses.replace(system.config.cache,
                                      style=CacheStyle.SRAM,
                                      bypass_probability=0.0)
        )
        system2 = NdpSystem(cfg, design_name="O")
        ms = system2.memory_system
        line, requester, camp = _find_camp_probe(system2)
        ms.access(requester, line)   # miss + SRAM fill
        fills_dram = ms.dram_stats.cache_fills
        assert fills_dram == 0       # fill went to SRAM, not DRAM
        system2.units[requester].l1.invalidate_all()
        system2.units[requester].prefetch.invalidate_all()
        reads_before = ms.dram_stats.cache_reads
        ms.access(requester, line)   # hit served from SRAM
        assert ms.dram_stats.cache_reads == reads_before


# ----------------------------------------------------------------------
def ms_caches(system):
    return [c for c in system.memory_system.caches if c is not None]


def _find_camp_probe(system):
    """A (line, requester, camp) where the nearest location is a camp."""
    mapper = system.camp_mapper
    cost = system.interconnect.cost_matrix
    for unit in range(system.config.num_units):
        for idx in range(64):
            addr = unit * system.memory_map.unit_capacity + idx * 64
            line = system.memory_map.line_of(addr)
            for requester in range(system.config.num_units):
                nearest, is_home = mapper.nearest_location(
                    line, requester, cost
                )
                if not is_home:
                    return line, requester, nearest
    raise AssertionError("no camp-probing pair found")
