"""Tests for the telemetry subsystem: registry/sampler/timeline units,
probe totals vs RunResult aggregates, the zero-overhead disabled path,
Chrome-trace export, and the sweep-cache telemetry plumbing."""

import json

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main
from repro.config import experiment_config
from repro.core.system import build_system
from repro.runtime.trace import TaskRecord, TaskTraceRecorder
from repro.sweep import cached_simulate, run_key
from repro.sweep.cache import default_cache
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricRegistry,
    Sampler,
    Telemetry,
    TelemetrySummary,
    Timeline,
)


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch, tmp_path):
    """Route any caching through a per-test directory."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def small_config():
    return experiment_config().scaled(2, 2)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricRegistry()
        reg.counter("c").add(3)
        reg.counter("c").inc()
        reg.gauge("g").set(7.5)
        h = reg.histogram("h")
        for v in (1.0, 2.0, 100.0):
            h.observe(v)
        values = reg.collect()
        assert values["c"] == 4
        assert values["g"] == 7.5
        assert values["h.count"] == 3
        assert values["h.sum"] == pytest.approx(103.0)
        assert values["h.max"] == 100.0

    def test_pull_metrics_read_at_collect_time(self):
        reg = MetricRegistry()
        state = {"v": 1}
        reg.register_pull("live", lambda: state["v"])
        assert reg.collect()["live"] == 1
        state["v"] = 42
        assert reg.collect()["live"] == 42

    def test_scopes_prefix_names(self):
        reg = MetricRegistry()
        scope = reg.scope("unit.3").scope("traveller")
        scope.counter("hits").add(5)
        assert reg.value("unit.3.traveller.hits") == 5

    def test_minting_is_idempotent(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")


# ----------------------------------------------------------------------
# sampler
# ----------------------------------------------------------------------
class TestSampler:
    def test_interval_cadence(self):
        s = Sampler(interval=4)
        s.add_probe("p", lambda: 1.0)
        taken = [t for t in range(10) if s.sample(t, float(t))]
        assert taken == [0, 4, 8]
        assert s.callbacks_invoked == 3

    def test_force_ignores_cadence(self):
        s = Sampler(interval=100)
        s.add_probe("p", lambda: 2.0)
        assert s.sample(3, 3.0) is False
        assert s.sample(3, 3.0, force=True) is True

    def test_vector_probe_and_deltas(self):
        s = Sampler()
        state = {"total": 0}

        def cumulative():
            state["total"] += 10
            return state["total"]

        s.add_probe("c", cumulative)
        s.add_probe("vec", lambda: np.array([1.0, 2.0]))
        s.sample(0, 0.0)
        s.sample(1, 1.0)
        assert s.series("c").deltas() == [10.0, 10.0]
        assert s.series("vec").matrix().shape == (2, 2)


# ----------------------------------------------------------------------
# timeline
# ----------------------------------------------------------------------
class TestTimeline:
    def test_capacity_ring_drops_oldest(self):
        tl = Timeline(capacity=3)
        for i in range(5):
            tl.instant(f"e{i}", float(i))
        assert len(tl) == 3
        assert tl.dropped == 2
        assert [e.name for e in tl] == ["e2", "e3", "e4"]

    def test_chrome_export_fields(self):
        tl = Timeline()
        tl.name_process(0, "sim")
        tl.name_thread(0, 1, "unit 1")
        tl.complete("span", 1000.0, 500.0, tid=1, depth=3)
        tl.instant("tick", 1200.0)
        tl.counter("q", 1300.0, {"u0": 2.0})
        doc = tl.to_chrome()
        events = doc["traceEvents"]
        # 2 metadata + 3 recorded
        assert len(events) == 5
        for ev in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(ev)
        span = next(e for e in events if e["ph"] == "X")
        assert span["dur"] == pytest.approx(0.5)   # ns -> us
        assert span["ts"] == pytest.approx(1.0)
        inst = next(e for e in events if e["ph"] == "i")
        assert inst["s"] == "t"

    def test_jsonl_roundtrip(self, tmp_path):
        tl = Timeline()
        tl.instant("a", 1.0)
        tl.complete("b", 2.0, 3.0)
        path = tmp_path / "t.jsonl"
        tl.write_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == ["a", "b"]


# ----------------------------------------------------------------------
# totals equality: telemetry counters ARE the RunResult aggregates
# ----------------------------------------------------------------------
class TestTotalsMatchRunResult:
    @pytest.mark.parametrize("design", ["B", "O"])
    def test_pr_totals(self, design):
        tel = Telemetry(sample_interval=1)
        result = repro.simulate(design, "pr", config=small_config(),
                                telemetry=tel)
        counters = tel.registry.collect()
        assert counters["traveller.hits"] == result.cache.hits
        assert counters["traveller.misses"] == result.cache.misses
        assert counters["noc.inter_hops"] == result.traffic.inter_hops
        assert counters["noc.messages"] == result.traffic.messages
        assert counters["dram.reads"] == result.dram.reads
        assert counters["run.tasks_executed"] == result.tasks_executed
        assert counters["scheduler.decisions"] >= result.tasks_executed
        # the digest on the result carries the same numbers
        assert result.telemetry is not None
        assert result.telemetry.counters["traveller.hits"] == \
            result.cache.hits

    def test_per_unit_counters_sum_to_totals(self):
        tel = Telemetry()
        result = repro.simulate("O", "pr", config=small_config(),
                                telemetry=tel)
        counters = tel.registry.collect()
        n = small_config().num_units
        per_unit = sum(counters[f"unit.{u}.traveller.hits"]
                       for u in range(n))
        assert per_unit == result.cache.hits
        tasks = sum(counters[f"unit.{u}.tasks_executed"] for u in range(n))
        assert tasks == result.tasks_executed

    def test_link_meter_consistent_with_traffic(self):
        tel = Telemetry()
        result = repro.simulate("O", "pr", config=small_config(),
                                telemetry=tel)
        meter = tel.link_meter
        assert meter is not None
        # every directed stack link has a mesh edge's worth of flits;
        # the XY decomposition conserves per-hop totals.
        assert meter.total_link_flits() > 0
        assert meter.stack_matrix().sum() == meter.total_link_flits()

    def test_queue_depth_series_covers_units(self):
        tel = Telemetry()
        repro.simulate("O", "pr", config=small_config(), telemetry=tel)
        depth = tel.sampler.series("queue.depth")
        assert depth.matrix().shape[1] == small_config().num_units
        assert len(depth) >= 1


# ----------------------------------------------------------------------
# disabled path: near-zero overhead
# ----------------------------------------------------------------------
class TestDisabledOverhead:
    def test_no_sampler_callbacks_when_disabled(self, monkeypatch):
        calls = {"sample": 0, "phase": 0}
        real_sample = Sampler.sample

        def counting_sample(self, *a, **k):
            calls["sample"] += 1
            return real_sample(self, *a, **k)

        monkeypatch.setattr(Sampler, "sample", counting_sample)
        real_begin = Telemetry.phase_begin

        def counting_begin(self, *a, **k):
            calls["phase"] += 1
            return real_begin(self, *a, **k)

        monkeypatch.setattr(Telemetry, "phase_begin", counting_begin)
        # NullTelemetry overrides both hooks with no-ops, so a
        # disabled run must never reach them.
        result = repro.simulate("O", "pr", config=small_config())
        assert result.telemetry is None
        assert calls == {"sample": 0, "phase": 0}
        assert NULL_TELEMETRY.sampler.callbacks_invoked == 0
        assert len(NULL_TELEMETRY.timeline) == 0

    def test_disabled_system_uses_null_singleton(self):
        system = build_system("O", small_config())
        assert system.telemetry is NULL_TELEMETRY
        assert system.executor.telemetry is NULL_TELEMETRY
        assert system.scheduler.telemetry is NULL_TELEMETRY
        assert system.interconnect.link_meter is None


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
class TestChromeTraceExport:
    def test_trace_cli_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = cli_main(["trace", "O", "pr", "--mesh", "2x2",
                       "--out", str(out)])
        assert rc == 0
        doc = json.load(open(out))
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert isinstance(ev["ph"], str)
            assert isinstance(ev["ts"], (int, float))
            assert isinstance(ev["pid"], int)
        decisions = [e for e in events if e["name"] == "scheduler.decide"]
        assert decisions
        assert {"policy", "unit", "cost_mem", "cost_load",
                "score"} <= set(decisions[0]["args"])
        depths = [e for e in events
                  if e["name"] == "queue.depth" and e["ph"] == "C"]
        assert depths
        spans = [e for e in events if e["ph"] == "X"]
        assert any(e["name"].startswith("timestamp") for e in spans)
        assert all("dur" in e for e in spans)
        assert doc["otherData"]["design"] == "O"
        assert doc["otherData"]["workload"] == "pr"

    def test_run_cli_trace_out(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = cli_main(["run", "-d", "B", "-w", "kmeans", "--mesh", "2x2",
                       "--trace-out", str(out)])
        assert rc == 0
        doc = json.load(open(out))
        assert doc["traceEvents"]

    def test_describe_reports_telemetry(self, capsys):
        assert cli_main(["describe", "--mesh", "2x2"]) == 0
        assert "telemetry: disabled" in capsys.readouterr().out
        assert cli_main(["describe", "--mesh", "2x2",
                         "--sample-interval", "4"]) == 0
        assert "telemetry: enabled" in capsys.readouterr().out


# ----------------------------------------------------------------------
# recorder-over-timeline adapter
# ----------------------------------------------------------------------
class TestRecorderTimelineAdapter:
    def test_records_become_trace_spans(self):
        rec = TaskTraceRecorder(frequency_ghz=2.0)
        rec.record(TaskRecord(
            task_id=9, timestamp=1, spawner_unit=0, assigned_unit=3,
            start_cycles=100.0, duration_cycles=50.0, stall_ns=5.0,
            hint_lines=2, stolen=False,
        ))
        events = rec.timeline.events
        assert len(events) == 1
        assert events[0].ph == "X"
        assert events[0].tid == 3
        assert events[0].ts_ns == pytest.approx(50.0)   # cycles / GHz
        assert rec.records[0].task_id == 9

    def test_shared_timeline_interleaves_with_telemetry(self):
        tel = Telemetry()
        system = build_system("O", small_config(), telemetry=tel)
        system.executor.recorder = TaskTraceRecorder(
            timeline=tel.timeline,
            frequency_ghz=system.config.core.frequency_ghz,
        )
        wl = repro.make_workload("kmeans", num_points=64, iterations=1)
        state = wl.setup(system)
        system.executor.run(wl.root_tasks(state), state=state,
                            on_barrier=wl.on_barrier)
        names = {e.name for e in tel.timeline}
        assert any(n.startswith("task ") for n in names)
        assert any(n.startswith("timestamp") for n in names)
        # the recorder still reconstructs its records from the mix
        assert len(system.executor.recorder) == 64


# ----------------------------------------------------------------------
# task-queue probes
# ----------------------------------------------------------------------
class TestQueueTelemetry:
    def test_attach_telemetry_mirrors_activity(self):
        from repro.runtime.queue import TaskQueue
        from repro.runtime.task import Task, TaskHint

        reg = MetricRegistry()
        q = TaskQueue()
        q.attach_telemetry(reg.scope("unit.0.queue"))
        for _ in range(3):
            q.enqueue(Task(func=lambda ctx: None, timestamp=0,
                           hint=TaskHint.empty()))
        q.dequeue()
        values = reg.collect()
        assert values["unit.0.queue.enqueued"] == 3
        assert values["unit.0.queue.dequeued"] == 1
        assert values["unit.0.queue.depth"] == 2
        q.steal_from_back()
        assert reg.value("unit.0.queue.depth") == 1


# ----------------------------------------------------------------------
# sweep plumbing
# ----------------------------------------------------------------------
class TestSweepTelemetryPlumbing:
    def test_sweep_configs_uses_result_cache(self, monkeypatch):
        from repro.sweep import runner as runner_mod
        from repro.simulate import sweep_configs

        calls = {"n": 0}
        real = runner_mod._live_simulate

        def counting(design, workload, config, telemetry=None):
            calls["n"] += 1
            return real(design, workload, config, telemetry=telemetry)

        monkeypatch.setattr(runner_mod, "_live_simulate", counting)
        wl = repro.make_workload("kmeans", num_points=64, iterations=1)
        configs = {"base": small_config()}
        first = sweep_configs("B", wl, configs)
        assert calls["n"] == 1
        second = sweep_configs("B", wl, configs)
        assert calls["n"] == 1  # served from the on-disk cache
        assert second["base"].makespan_cycles == \
            first["base"].makespan_cycles

    def test_sweep_configs_honors_no_cache(self, monkeypatch):
        from repro.sweep import runner as runner_mod
        from repro.simulate import sweep_configs

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = {"n": 0}
        real = runner_mod._live_simulate

        def counting(design, workload, config, telemetry=None):
            calls["n"] += 1
            return real(design, workload, config, telemetry=telemetry)

        monkeypatch.setattr(runner_mod, "_live_simulate", counting)
        wl = repro.make_workload("kmeans", num_points=64, iterations=1)
        configs = {"base": small_config()}
        sweep_configs("B", wl, configs)
        sweep_configs("B", wl, configs)
        assert calls["n"] == 2

    def test_cached_simulate_writes_telemetry_sidecar(self):
        cfg = small_config()
        wl = repro.make_workload("kmeans", num_points=64, iterations=1)
        tel = Telemetry()
        result = cached_simulate("O", wl, cfg, telemetry=tel)
        key = run_key("O", wl, cfg)
        cache = default_cache()
        assert cache.path_for(key).exists()
        sidecar = cache.load_telemetry(key)
        assert sidecar is not None
        assert sidecar["counters"]["traveller.hits"] == result.cache.hits
        # summary round-trips through its dict form
        summary = TelemetrySummary.from_dict(sidecar)
        assert summary.counters["traveller.hits"] == result.cache.hits

    def test_telemetry_forces_live_run_on_cache_hit(self):
        cfg = small_config()
        wl = repro.make_workload("kmeans", num_points=64, iterations=1)
        cached_simulate("B", wl, cfg)                 # seed the cache
        tel = Telemetry()
        result = cached_simulate("B", wl, cfg, telemetry=tel)
        # a cache hit cannot produce a timeline; the live rerun did
        assert result.telemetry is not None
        assert len(tel.timeline) > 0

    def test_cache_json_schema_unchanged_by_telemetry(self):
        """The result entry must be byte-compatible whether or not the
        run was instrumented (telemetry rides in the sidecar only)."""
        cfg = small_config()
        wl = repro.make_workload("kmeans", num_points=64, iterations=1)
        cached_simulate("B", wl, cfg, telemetry=Telemetry())
        key = run_key("B", wl, cfg)
        payload = json.loads(
            default_cache().path_for(key).read_text()
        )
        assert "telemetry" not in payload["result"]
        hit = default_cache().load(key)
        assert hit is not None
        assert hit.telemetry is None
