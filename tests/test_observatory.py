"""Tests for the run observatory: the history ledger, the diff
engine, the perf-regression detector, and sweep progress events
(repro.observatory)."""

import json
import os
import time

import pytest

from repro.config import experiment_config
from repro.observatory.diffing import (
    MetricDelta,
    RunHandle,
    diff_refs,
    diff_runs,
    resolve_ref,
)
from repro.observatory.history import (
    SCHEMA,
    HistoryLedger,
    RunRecord,
    record_bench,
    record_run,
)
from repro.observatory.progress import (
    EventCollector,
    JsonlProgress,
    ProgressEvent,
    SweepProgress,
    tee,
)
from repro.observatory.regression import (
    changepoints,
    compare_bench,
    merge_reports,
    scan_bench_trajectory,
    scan_history,
)
from repro.sweep import (
    SIMULATOR_VERSION,
    ResultCache,
    SweepPoint,
    SweepRunner,
    cached_simulate,
    run_key,
)
from repro.sweep import runner as runner_mod
from tests.test_sweep import fake_result


@pytest.fixture(autouse=True)
def _isolate_observatory_env(monkeypatch, tmp_path):
    """History and cache must never leak into the working checkout."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_NO_HISTORY", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_HISTORY_PATH",
                       str(tmp_path / "history.jsonl"))


def make_record(i=0, **overrides) -> RunRecord:
    rec = RunRecord(ts=1000.0 + i, source="simulate", design="O",
                    workload="pr", key=f"{i:02x}" * 32,
                    config_fingerprint="fp0", engine="batched",
                    seed=42, mesh="2x2", wall_s=0.5,
                    makespan_cycles=1000.0 + i, tasks_executed=64)
    for name, value in overrides.items():
        setattr(rec, name, value)
    return rec


# ----------------------------------------------------------------------
# history ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        ledger = HistoryLedger(path=tmp_path / "h.jsonl")
        for i in range(3):
            assert ledger.append(make_record(i))
        records = ledger.records()
        assert [r.ts for r in records] == [1000.0, 1001.0, 1002.0]
        assert records[0].design == "O"
        assert records[0].schema == SCHEMA
        assert ledger.get(-1).ts == 1002.0

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "h.jsonl"
        ledger = HistoryLedger(path=path)
        ledger.append(make_record(0))
        with open(path, "a") as fh:
            fh.write("{torn write\n")
            fh.write('{"schema": "other-thing"}\n')
        ledger.append(make_record(1))
        records = ledger.records()
        assert [r.ts for r in records] == [1000.0, 1001.0]
        assert ledger.corrupt_lines == 2

    def test_rotation_keeps_one_generation(self, tmp_path):
        path = tmp_path / "h.jsonl"
        ledger = HistoryLedger(path=path, max_bytes=600)
        for i in range(10):
            ledger.append(make_record(i))
        rotated = tmp_path / "h.jsonl.1"
        assert rotated.exists()
        # the live file holds only the newest records, nothing lost
        # from the current generation
        assert ledger.records()[-1].ts == 1009.0
        assert path.stat().st_size <= 600

    def test_env_disables_recording(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_HISTORY", "1")
        ledger = HistoryLedger(path=tmp_path / "h.jsonl")
        assert not ledger.append(make_record())
        assert not (tmp_path / "h.jsonl").exists()
        assert ledger.records() == []

    def test_find_key_returns_newest_match(self, tmp_path):
        ledger = HistoryLedger(path=tmp_path / "h.jsonl")
        ledger.append(make_record(0, key="ab" * 32, wall_s=0.1))
        ledger.append(make_record(1, key="cd" * 32))
        ledger.append(make_record(2, key="ab" * 32, wall_s=0.9))
        hit = ledger.find_key("abab")
        assert hit is not None and hit.wall_s == 0.9
        assert ledger.find_key("ffff") is None

    def test_unwritable_path_is_swallowed(self, tmp_path):
        ledger = HistoryLedger(path=tmp_path)  # a directory, not a file
        assert not ledger.append(make_record())
        assert ledger.io_errors == 1


class TestRecordRun:
    def test_simulate_drops_a_ledger_line(self, tmp_path):
        import repro

        cfg = experiment_config().scaled(2, 2)
        repro.simulate("B", repro.make_workload(
            "kmeans", num_points=128, iterations=1), cfg)
        ledger = HistoryLedger(path=tmp_path / "history.jsonl")
        records = ledger.records()
        assert len(records) == 1
        rec = records[0]
        assert rec.source == "simulate"
        assert rec.design == "B" and rec.workload == "kmeans"
        assert rec.key and len(rec.key) == 64
        assert rec.config_fingerprint and rec.engine
        assert rec.mesh == "2x2" and rec.wall_s > 0
        assert rec.tasks_executed > 0

    def test_record_run_never_raises(self, tmp_path, monkeypatch):
        # ledger path is a directory -> every append fails silently
        monkeypatch.setenv("REPRO_HISTORY_PATH", str(tmp_path))
        assert record_run(fake_result(), config=experiment_config(),
                          workload="kmeans") is False

    def test_history_does_not_change_keys_or_cached_results(
            self, tmp_path, monkeypatch):
        """Recording is non-semantic: run keys, cached result payloads
        and the version salt are byte-identical with history on/off."""
        monkeypatch.setattr(runner_mod, "_live_simulate",
                            lambda d, w, c: fake_result(design=d))
        cfg = experiment_config()

        key_on = run_key("B", "kmeans", cfg)
        cache_on = ResultCache(root=tmp_path / "on")
        cached_simulate("B", "kmeans", cfg, cache=cache_on)

        monkeypatch.setenv("REPRO_NO_HISTORY", "1")
        key_off = run_key("B", "kmeans", cfg)
        cache_off = ResultCache(root=tmp_path / "off")
        cached_simulate("B", "kmeans", cfg, cache=cache_off)

        assert key_on == key_off
        on = json.loads(cache_on.path_for(key_on).read_text())
        off = json.loads(cache_off.path_for(key_off).read_text())
        on["meta"].pop("created_unix")
        off["meta"].pop("created_unix")
        assert on == off
        assert SIMULATOR_VERSION == "abndp-sim-1"

    def test_cache_hits_are_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_mod, "_live_simulate",
                            lambda d, w, c: fake_result(design=d))
        cfg = experiment_config()
        cache = ResultCache(root=tmp_path / "cache")
        cached_simulate("B", "kmeans", cfg, cache=cache)
        cached_simulate("B", "kmeans", cfg, cache=cache)
        ledger = HistoryLedger(path=tmp_path / "history.jsonl")
        hits = [r for r in ledger.records() if r.source == "cache"]
        assert len(hits) == 1
        assert hits[0].key == run_key("B", "kmeans", cfg)

    def test_record_bench(self, tmp_path):
        payload = {
            "designs": ["O", "B"], "workloads": ["pr"],
            "engine": "batched", "seed": 42, "mesh": "4x4",
            "git_rev": "abc123def456", "hostname": "ci-box",
            "totals": {"wall_s": 1.5, "tasks": 100,
                       "tasks_per_s": 66.7},
        }
        ledger = HistoryLedger(path=tmp_path / "h.jsonl")
        assert record_bench(payload, "BENCH_2.json", ledger=ledger)
        rec = ledger.get(-1)
        assert rec.source == "bench"
        assert rec.git_rev == "abc123def456"
        assert rec.extra["bench_path"] == "BENCH_2.json"
        assert rec.wall_s == 1.5


# ----------------------------------------------------------------------
# diff engine
# ----------------------------------------------------------------------
class TestDiff:
    def test_identical_results_diff_to_zero(self):
        a = RunHandle(ref="a", result=fake_result(), wall_s=1.0)
        b = RunHandle(ref="b", result=fake_result(), wall_s=2.0)
        diff = diff_runs(a, b)
        assert diff.identical
        assert diff.semantic_deltas == []
        assert diff.deltas  # plenty compared, none significant
        # the wall-time difference is still visible, as non-semantic
        assert diff.wall.abs_delta == 1.0 and not diff.wall.semantic
        assert "no semantic deltas" in diff.render()

    def test_changed_metrics_are_flagged(self):
        a = RunHandle(ref="a", result=fake_result(makespan=100.0))
        b = RunHandle(ref="b", result=fake_result(makespan=150.0))
        diff = diff_runs(a, b)
        assert not diff.identical
        flagged = {d.name for d in diff.semantic_deltas}
        assert "makespan_cycles" in flagged
        mk = next(d for d in diff.deltas if d.name == "makespan_cycles")
        assert mk.rel_delta == pytest.approx(0.5)

    def test_end_to_end_refs_index_key_and_file(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_mod, "_live_simulate",
                            lambda d, w, c: fake_result(design=d))
        cfg = experiment_config()
        cache = ResultCache(root=tmp_path / "cache")
        # two cache hits -> two ledger lines carrying the run key
        for _ in range(3):
            cached_simulate("B", "kmeans", cfg, cache=cache)
        key = run_key("B", "kmeans", cfg)
        ledger2 = HistoryLedger(
            path=tmp_path / "history.jsonl")  # where hits recorded
        assert len(ledger2.records()) == 2

        by_index = resolve_ref("-1", ledger=ledger2, cache=cache)
        assert by_index.key == key and by_index.result is not None
        by_key = resolve_ref(key[:12], ledger=ledger2, cache=cache)
        assert by_key.key == key
        by_file = resolve_ref(str(cache.path_for(key)),
                              ledger=ledger2, cache=cache)
        assert by_file.key == key and by_file.result is not None

        diff = diff_runs(by_index, by_key)
        assert diff.identical
        assert diff_runs(by_index, by_file).identical

    def test_diff_refs_cli_entry(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_mod, "_live_simulate",
                            lambda d, w, c: fake_result(design=d))
        cfg = experiment_config()
        cache = ResultCache(root=tmp_path / "cache")
        for _ in range(3):
            cached_simulate("O", "kmeans", cfg, cache=cache)
        ledger = HistoryLedger(path=tmp_path / "history.jsonl")
        diff = diff_refs("-1", "-2", ledger=ledger, cache=cache)
        assert diff.identical
        payload = diff.to_dict()
        assert payload["identical"] and payload["semantic_deltas"] == 0

    def test_bad_refs_raise_actionable_errors(self, tmp_path):
        ledger = HistoryLedger(path=tmp_path / "h.jsonl")
        with pytest.raises(ValueError, match="empty"):
            resolve_ref("-1", ledger=ledger, cache=False)
        ledger.append(make_record(0))
        with pytest.raises(ValueError, match="out of range"):
            resolve_ref("7", ledger=ledger, cache=False)
        with pytest.raises(ValueError, match="matches nothing"):
            resolve_ref("deadbeefdeadbeef", ledger=ledger, cache=False)
        with pytest.raises(ValueError, match="unrecognized"):
            resolve_ref("not/a/thing", ledger=ledger, cache=False)

    def test_stale_sidecar_warning(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_mod, "_live_simulate",
                            lambda d, w, c: fake_result(design=d))
        cfg = experiment_config()
        cache = ResultCache(root=tmp_path / "cache")
        cached_simulate("B", "kmeans", cfg, cache=cache)
        key = run_key("B", "kmeans", cfg)
        cache.store_telemetry(key, {"counters": {"scheduler.steals": 1}})
        entry = cache.path_for(key)
        sidecar = cache.telemetry_path_for(key)
        old = entry.stat().st_mtime - 60
        os.utime(sidecar, (old, old))
        handle = resolve_ref(str(key), ledger=HistoryLedger(
            path=tmp_path / "h.jsonl"), cache=cache)
        assert any("older" in w for w in handle.warnings)

    def test_metric_delta_semantics(self):
        exact = MetricDelta(name="x", a=5.0, b=5.0)
        assert not exact.significant and exact.rel_delta == 0.0
        new = MetricDelta(name="x", a=0.0, b=3.0)
        assert new.significant and "new" in new.render()


# ----------------------------------------------------------------------
# regression detection
# ----------------------------------------------------------------------
def make_bench(wall, tasks_per_s=None, engine="batched", seed=42,
               mesh="4x4", makespan=119216, tasks=8192, accesses=50000):
    tps = tasks_per_s if tasks_per_s is not None else tasks / wall
    point = {
        "design": "O", "workload": "pr", "wall_s": wall,
        "cpu_s": wall, "tasks": tasks, "accesses": accesses,
        "tasks_per_s": tps, "accesses_per_s": accesses / wall,
        "makespan_cycles": makespan,
    }
    return {
        "schema": "repro-bench-v1", "engine": engine,
        "designs": ["O"], "workloads": ["pr"],
        "seed": seed, "mesh": mesh, "points": [point],
        "totals": {"wall_s": wall, "cpu_s": wall, "tasks": tasks,
                   "accesses": accesses, "tasks_per_s": tps,
                   "accesses_per_s": accesses / wall},
    }


class TestChangepoints:
    def test_flat_series_has_no_changepoint(self):
        assert changepoints([1.0] * 8) == []

    def test_step_change_is_found(self):
        cps = changepoints([1.0] * 5 + [1.2] * 4)
        assert len(cps) == 1
        assert cps[0].index == 5
        assert cps[0].rel_change == pytest.approx(0.2)

    def test_noisy_but_flat_series_passes(self):
        series = [1.0, 1.03, 0.97, 1.02, 0.98, 1.01, 0.99, 1.02]
        assert changepoints(series) == []

    def test_tiny_shift_below_min_rel_is_ignored(self):
        # perfectly clean step (infinite z) but only a 2% move
        assert changepoints([1.0] * 4 + [1.02] * 4) == []


class TestBenchRegression:
    def test_flat_trajectory_passes(self):
        records = [(f"BENCH_{i}.json", make_bench(1.0 + 0.005 * (i % 2)))
                   for i in range(5)]
        report = scan_bench_trajectory(records)
        assert report.ok and report.checks > 0

    def test_injected_slowdown_is_flagged(self):
        # +20% on the two newest records: the band check flags the
        # newest, the change-point scan localizes the sustained shift
        walls = [1.0, 1.0, 1.0, 1.0, 1.2, 1.2]
        records = [(f"BENCH_{i}.json", make_bench(w))
                   for i, w in enumerate(walls)]
        report = scan_bench_trajectory(records)
        assert not report.ok
        assert any(f.kind == "tolerance" and "wall_s" in f.metric
                   for f in report.regressions)
        assert any(f.kind == "change-point"
                   for f in report.regressions)

    def test_speedup_is_an_improvement_not_a_regression(self):
        walls = [1.0, 1.0, 1.0, 1.0, 0.5]
        records = [(f"BENCH_{i}.json", make_bench(w))
                   for i, w in enumerate(walls)]
        report = scan_bench_trajectory(records)
        assert report.ok
        # the move is reported, just not as a regression
        assert any("improvement" in f.message for f in report.findings)

    def test_engine_tier_groups(self):
        # scalar and batched share the exact tier: the switch compares
        # inside one group and reads as an improvement, never a
        # regression; the statistical vector tier is its own group
        # (a singleton here, so nothing is scanned for it).
        records = [("BENCH_0.json", make_bench(3.0, engine="scalar")),
                   ("BENCH_1.json", make_bench(1.0, engine="batched")),
                   ("BENCH_2.json", make_bench(0.5, engine="vector"))]
        report = scan_bench_trajectory(records)
        assert report.ok
        assert any("improvement" in f.message for f in report.findings)
        assert sum("too short" in n for n in report.notes) == 1

    def test_compare_bench_semantic_drift_is_a_behaviour_change(self):
        base = make_bench(1.0)
        cand = make_bench(1.0, tasks=8200)  # deterministic field moved
        report = compare_bench(base, cand)
        assert not report.ok
        assert any(f.kind == "semantic" for f in report.regressions)

    def test_compare_bench_wall_band(self):
        base = make_bench(1.0)
        assert compare_bench(base, make_bench(1.05)).ok
        slow = compare_bench(base, make_bench(1.3))
        assert not slow.ok
        assert any("bad direction" in f.message
                   for f in slow.regressions)
        # a generous band admits cross-machine noise
        assert compare_bench(base, make_bench(1.3), tolerance=3.0).ok

    def test_compare_bench_skips_semantics_across_seeds(self):
        base = make_bench(1.0, seed=42)
        cand = make_bench(1.0, seed=7, tasks=9000)
        report = compare_bench(base, cand)
        assert report.ok
        assert any("seed/mesh differ" in n for n in report.notes)

    def test_merge_reports(self):
        a = scan_bench_trajectory(
            [(f"B{i}", make_bench(w))
             for i, w in enumerate([1.0, 1.0, 1.0, 1.0, 1.2])])
        b = scan_bench_trajectory([])
        merged = merge_reports(a, b)
        assert merged.checks == a.checks
        assert not merged.ok


class TestHistoryRegression:
    def test_wall_time_step_in_ledger_is_flagged(self, tmp_path):
        ledger = HistoryLedger(path=tmp_path / "h.jsonl")
        for i, wall in enumerate([0.5, 0.5, 0.5, 0.5, 1.0]):
            ledger.append(make_record(i, key=None, wall_s=wall))
        report = scan_history(ledger=ledger)
        assert not report.ok
        assert any("wall" in f.metric for f in report.regressions)

    def test_short_and_flat_groups_pass(self, tmp_path):
        ledger = HistoryLedger(path=tmp_path / "h.jsonl")
        for i in range(3):
            ledger.append(make_record(i, wall_s=0.5))
        assert scan_history(ledger=ledger).ok  # < min_runs
        for i in range(3, 9):
            ledger.append(make_record(i, wall_s=0.5))
        assert scan_history(ledger=ledger).ok  # flat


# ----------------------------------------------------------------------
# progress events
# ----------------------------------------------------------------------
class TestProgressEvents:
    POINT_KW = {"num_points": 256, "iterations": 1}

    def _points(self, designs=("B", "O")):
        cfg = experiment_config().scaled(2, 2)
        return [SweepPoint(d, "kmeans", cfg,
                           workload_kwargs=dict(self.POINT_KW))
                for d in designs]

    def test_two_point_sweep_emits_full_stream(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_mod, "_live_simulate",
                            lambda d, w, c: fake_result(design=d))
        cache = ResultCache(root=tmp_path)
        seen = EventCollector()
        SweepRunner(cache=cache, jobs=1, events=seen).run(self._points())
        kinds = seen.kinds()
        assert kinds[0] == "begin" and kinds[-1] == "end"
        assert kinds.count("started") == 2
        assert kinds.count("done") == 2
        begin = seen.events[0]
        assert begin.total == 2
        done = [e for e in seen.events if e.event == "done"]
        assert [e.done for e in done] == [1, 2]
        assert {e.label for e in done} == {"B/kmeans", "O/kmeans"}

        # the second sweep resolves everything from the cache
        seen2 = EventCollector()
        SweepRunner(cache=cache, jobs=1, events=seen2).run(self._points())
        assert seen2.kinds() == ["begin", "cached", "cached", "end"]

    def test_failed_point_emits_failed_event(self, monkeypatch):
        def broken(design, workload, config):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(runner_mod, "_live_simulate", broken)
        seen = EventCollector()
        SweepRunner(cache=False, jobs=1, events=seen).run(
            self._points(designs=("B",)))
        failed = [e for e in seen.events if e.event == "failed"]
        assert len(failed) == 1 and "kaboom" in failed[0].error

    def test_broken_consumer_never_fails_the_sweep(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_mod, "_live_simulate",
                            lambda d, w, c: fake_result(design=d))

        def explode(ev):
            raise RuntimeError("renderer bug")

        report = SweepRunner(cache=ResultCache(root=tmp_path), jobs=1,
                             events=explode).run(self._points())
        assert all(o.ok for o in report.outcomes)

    def test_tee_fans_out_and_swallows(self):
        seen = EventCollector()

        def explode(ev):
            raise OSError("closed pipe")

        fan = tee(explode, None, seen)
        fan(ProgressEvent(event="begin", total=2))
        assert seen.kinds() == ["begin"]

    def test_status_line_and_eta(self):
        progress = SweepProgress(stream=None, live=True, enabled=False)
        progress(ProgressEvent(event="begin", total=4, jobs=2))
        progress(ProgressEvent(event="cached", done=1, total=4))
        progress(ProgressEvent(event="started"))
        progress(ProgressEvent(event="done", done=2, total=4,
                               elapsed_s=0.1))
        line = progress.status_line()
        assert "sweep 2/4" in line and "1 cached" in line
        assert progress.eta_s() is not None
        progress(ProgressEvent(event="failed", done=3, total=4))
        assert "FAILED" in progress.status_line()

    def test_plain_renderer_writes_per_point_lines(self):
        import io

        buf = io.StringIO()
        progress = SweepProgress(stream=buf, live=False)
        progress(ProgressEvent(event="begin", total=2, jobs=1))
        progress(ProgressEvent(event="cached", label="B/pr",
                               done=1, total=2))
        progress(ProgressEvent(event="done", label="O/pr", done=2,
                               total=2, elapsed_s=1.5))
        progress(ProgressEvent(event="end", done=2, total=2))
        text = buf.getvalue()
        assert "[1/2] B/pr" in text and "cached" in text
        assert "ran 1.5s" in text
        assert "sweep 2/2" in text.splitlines()[-1]

    def test_jsonl_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlProgress(str(path))
        sink(ProgressEvent(event="begin", total=1, jobs=1))
        sink(ProgressEvent(event="done", label="B/pr", done=1, total=1,
                           elapsed_s=0.2))
        sink(ProgressEvent(event="end", done=1, total=1))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [ev["event"] for ev in lines] == ["begin", "done", "end"]
        assert all("t" in ev for ev in lines)
        assert lines[1]["label"] == "B/pr"
        assert sink.events_written == 3


# ----------------------------------------------------------------------
# sidecar hygiene (satellite: no churn on unchanged telemetry)
# ----------------------------------------------------------------------
class TestSidecarSkip:
    def test_unchanged_sidecar_is_not_rewritten(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        summary = {"counters": {"scheduler.steals": 3}, "events": 1}
        cache.store_telemetry("ab" * 32, summary)
        path = cache.telemetry_path_for("ab" * 32)
        before = path.stat().st_mtime_ns
        time.sleep(0.01)
        cache.store_telemetry("ab" * 32, dict(summary))
        assert cache.stats.sidecar_skips == 1
        assert path.stat().st_mtime_ns == before

    def test_changed_sidecar_is_rewritten(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.store_telemetry("ab" * 32, {"events": 1})
        cache.store_telemetry("ab" * 32, {"events": 2})
        assert cache.stats.sidecar_skips == 0
        assert cache.load_telemetry("ab" * 32) == {"events": 2}
