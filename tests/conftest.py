"""Shared fixtures: small machines and datasets that keep tests fast."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    CacheStyle,
    SchedulerConfig,
    SystemConfig,
    TopologyConfig,
    default_config,
)


@pytest.fixture
def table1_config() -> SystemConfig:
    """The paper's full-size Table 1 configuration."""
    return default_config()


@pytest.fixture
def small_config() -> SystemConfig:
    """A 2x2-stack machine (32 units) for fast end-to-end tests."""
    return default_config().scaled(2, 2)


@pytest.fixture
def tiny_cacheless_config() -> SystemConfig:
    """2x2 stacks, no remote-data cache."""
    cfg = default_config().scaled(2, 2)
    return cfg.with_(
        cache=dataclasses.replace(cfg.cache, style=CacheStyle.NONE)
    ).validate()
