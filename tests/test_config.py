"""Unit tests for repro.config: Table 1 values and validation."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    CacheStyle,
    CampMapping,
    CoreConfig,
    MemoryConfig,
    NocConfig,
    ReplacementPolicy,
    SchedulerConfig,
    SchedulingPolicy,
    SramConfig,
    SystemConfig,
    TopologyConfig,
    default_config,
    describe_config,
    experiment_config,
    GB,
    MB,
)


class TestTopologyConfig:
    def test_default_shape_matches_table1(self):
        topo = TopologyConfig()
        assert topo.mesh_rows == 4 and topo.mesh_cols == 4
        assert topo.units_per_stack == 8
        assert topo.num_stacks == 16
        assert topo.num_units == 128

    def test_diameter_of_4x4_mesh_is_6(self):
        assert TopologyConfig().diameter == 6

    def test_diameter_scales_with_mesh(self):
        assert TopologyConfig(mesh_rows=2, mesh_cols=2).diameter == 2
        assert TopologyConfig(mesh_rows=8, mesh_cols=8).diameter == 14

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            TopologyConfig(mesh_rows=0).validate()
        with pytest.raises(ValueError):
            TopologyConfig(units_per_stack=0).validate()


class TestCoreConfig:
    def test_table1_values(self):
        core = CoreConfig()
        assert core.frequency_ghz == 2.0
        assert core.cores_per_unit == 2
        assert core.energy_per_instr_pj == 371.0

    def test_cycle_conversion_roundtrip(self):
        core = CoreConfig()
        assert core.cycles(10.0) == 20.0
        assert core.cycle_ns == 0.5

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            CoreConfig(frequency_ghz=0).validate()


class TestMemoryConfig:
    def test_access_latency_is_trcd_plus_tcas(self):
        mem = MemoryConfig()
        assert mem.access_latency_ns == 34.0

    def test_line_bits(self):
        assert MemoryConfig().line_bits == 512

    def test_access_energy_includes_act_pre_fraction(self):
        mem = MemoryConfig()
        expected = 512 * 5.0 + 0.5 * 535.8
        assert mem.access_energy_pj() == pytest.approx(expected)

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError):
            MemoryConfig(cacheline_bytes=48).validate()


class TestNocConfig:
    def test_distance_costs_follow_hardware_latencies(self):
        noc = NocConfig()
        assert noc.d_local == 0.0
        assert noc.d_intra == 1.5
        assert noc.d_inter == 10.0


class TestCacheConfig:
    def test_cache_bytes_is_fraction_of_local_memory(self):
        cache = CacheConfig()
        mem = MemoryConfig()
        assert cache.cache_bytes(mem) == 512 * MB // 64  # 8 MB

    def test_num_sets_matches_section_4_3_arithmetic(self):
        # 512MB/64 / 64B / 4 ways = 32768 sets (paper Section 4.3).
        assert CacheConfig().num_sets(MemoryConfig()) == 32768

    def test_num_groups_is_camps_plus_home(self):
        assert CacheConfig(num_camps=3).num_groups() == 4
        assert CacheConfig(num_camps=7).num_groups() == 8

    def test_rejects_bad_bypass_probability(self):
        with pytest.raises(ValueError):
            CacheConfig(bypass_probability=1.5).validate()

    def test_tiny_cache_rejected_for_high_associativity(self):
        cfg = CacheConfig(capacity_ratio=1 << 30, associativity=4)
        with pytest.raises(ValueError):
            cfg.num_sets(MemoryConfig())


class TestSchedulerConfig:
    def test_default_alpha_is_half_diameter(self):
        sched = SchedulerConfig()
        assert sched.resolved_alpha(TopologyConfig()) == 3.0

    def test_explicit_alpha_wins(self):
        sched = SchedulerConfig(hybrid_alpha=1.5)
        assert sched.resolved_alpha(TopologyConfig()) == 1.5

    def test_hybrid_weight_is_alpha_times_d_inter(self):
        sched = SchedulerConfig()
        assert sched.hybrid_weight(TopologyConfig(), NocConfig()) == 30.0

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            SchedulerConfig(exchange_interval_cycles=0).validate()


class TestSystemConfig:
    def test_total_capacity_is_64gb(self):
        assert default_config().total_capacity == 64 * GB

    def test_validate_rejects_indivisible_groups(self):
        cfg = default_config()
        bad = cfg.with_(
            cache=dataclasses.replace(cfg.cache, num_camps=2)  # 3 groups
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_cacheless_config_ignores_group_divisibility(self):
        cfg = default_config()
        ok = cfg.with_(
            cache=dataclasses.replace(
                cfg.cache, num_camps=2, style=CacheStyle.NONE
            )
        )
        ok.validate()  # must not raise

    def test_scaled_returns_new_mesh(self):
        cfg = default_config().scaled(8, 8)
        assert cfg.num_units == 512

    def test_describe_mentions_key_table1_strings(self):
        text = describe_config(default_config())
        assert "4x4 stacks" in text
        assert "64 GB in total" in text
        assert "1/64 of local mem. capacity" in text
        assert "B = 3 x D_inter" in text

    def test_experiment_config_scales_exchange_interval(self):
        cfg = experiment_config()
        assert cfg.scheduler.exchange_interval_cycles < 100_000
        # Everything else stays at Table 1 values.
        assert cfg.topology.num_units == 128
        assert cfg.cache.capacity_ratio == 64
