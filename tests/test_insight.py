"""Tests for the insight plane: bottleneck attribution against
synthetic ground-truth fixtures, report determinism, trace-id
non-semantics, the Prometheus metrics plane (unit + live /v1/metrics),
telemetry schema versioning in the diff engine, and the zero-overhead
guard on the disabled-telemetry path."""

import json

import pytest

import repro
import repro.sweep.runner as runner_mod
from repro.config import experiment_config
from repro.insight.attribution import (
    BOTTLENECK_CLASSES,
    SKEW_THRESHOLD,
    BottleneckProfile,
    attribute_point,
    link_loads_from_unit_matrix,
    mesh_link_count,
)
from repro.insight.metrics_plane import (
    PROMETHEUS_CONTENT_TYPE,
    MetricFamily,
    render_exposition,
    runtime_metric_families,
)
from repro.insight.report import build_report
from repro.insight.trace import (
    campaign_trace_events,
    merge_chrome_traces,
    mint_trace_id,
    write_campaign_trace,
)
from repro.observatory.diffing import RunHandle, diff_runs
from repro.observatory.progress import ProgressEvent
from repro.service.spec import ExperimentSpec
from repro.sweep import cached_simulate, run_key
from repro.sweep.cache import default_cache
from repro.telemetry import NULL_TELEMETRY, TelemetrySummary
from repro.telemetry.core import SUMMARY_VERSION

from tests.test_sweep import fake_result


@pytest.fixture(autouse=True)
def _isolate_env(monkeypatch, tmp_path):
    """Route caching and history through per-test directories."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_HISTORY_PATH",
                       str(tmp_path / "history.jsonl"))


def small_config():
    # 2x2 stacks x 8 units x 2 cores: 32 units, 64 lanes, 8 mesh links.
    return experiment_config().scaled(2, 2)


# ----------------------------------------------------------------------
# attribution: synthetic fixtures with known ground truth
# ----------------------------------------------------------------------
class TestAttributionGroundTruth:
    """Each fixture makes exactly one resource dominant by
    construction, so the expected class (and the occupancy arithmetic)
    is knowable without running the simulator."""

    def test_pure_compute(self):
        # 90% mean utilization, zero traffic of any kind.
        profile = attribute_point({
            "makespan_cycles": 1000.0,
            "mean_core_cycles": 900.0,
            "busiest_core_cycles": 950.0,
            "load_imbalance": 950.0 / 900.0,
        }, config=small_config())
        assert profile.primary == "compute"
        assert profile.occupancy["compute"] == pytest.approx(0.9)
        assert profile.confidence > 0.9
        assert profile.memory_intensity == 0.0
        assert profile.quadrant == "compute/balanced"
        assert profile.hottest_link is None
        assert "approx_skew" in profile.inputs

    def test_dram_saturated(self):
        # 4000 accesses x 4-cycle vault service (the line_transfer_ns
        # fallback: experiment_config disables service_ns) over
        # 32 vaults x 1000 cycles = 0.5 channel occupancy.
        profile = attribute_point({
            "makespan_cycles": 1000.0,
            "mean_core_cycles": 100.0,
            "busiest_core_cycles": 100.0,
            "dram_reads": 4000.0,
        }, config=small_config())
        assert profile.primary == "dram"
        assert profile.occupancy["dram"] == pytest.approx(0.5)
        assert profile.confidence == pytest.approx(1.0)
        # charged stalls dwarf the 10% utilization: pure memory half.
        assert profile.memory_intensity == pytest.approx(1.0)
        assert profile.quadrant == "memory/balanced"
        assert profile.occupancy["compute"] == 0.0

    def test_one_hot_link(self):
        # All 500 messages go unit 0 (stack 0) -> unit 31 (stack 3);
        # XY routes columns-first, so the first hop is s0->s1 and that
        # link serializes 500 msgs x 20 cycles over a 10k makespan.
        matrix = [[0.0] * 32 for _ in range(32)]
        matrix[0][31] = 500.0
        telemetry = {"meta": {"num_units": 32}, "counters": {},
                     "link_matrix": matrix}
        profile = attribute_point({
            "makespan_cycles": 10000.0,
            "mean_core_cycles": 500.0,
            "busiest_core_cycles": 500.0,
            "inter_hops": 1000.0,
        }, telemetry=telemetry, config=small_config())
        assert profile.primary == "noc"
        assert profile.hottest_link == "s0->s1"
        assert profile.occupancy["noc"] == pytest.approx(1.0)
        assert profile.confidence > 0.9
        assert "link_matrix" in profile.inputs
        assert "telemetry" in profile.inputs

    def test_skewed_imbalance(self):
        # 60 lazy cores at 100 cycles, 4 hot cores at 1000: p95/mean
        # = 865 / 156.25 ~= 5.5, far past the quadrant threshold.
        cycles = [100.0] * 60 + [1000.0] * 4
        mean = sum(cycles) / len(cycles)
        profile = attribute_point({
            "makespan_cycles": 1000.0,
            "mean_core_cycles": mean,
            "busiest_core_cycles": 1000.0,
        }, config=small_config(), active_cycles=cycles)
        assert profile.primary == "imbalance"
        assert profile.imbalance > SKEW_THRESHOLD
        assert profile.quadrant.endswith("/imbalanced")
        assert profile.confidence > 0.0
        assert "active_cycles" in profile.inputs

    def test_empty_row_degrades_cleanly(self):
        profile = attribute_point({}, config=small_config())
        assert profile.primary == "compute"
        assert profile.confidence == 0.0
        assert "empty" in profile.inputs

    def test_unit_cycle_counters_refine_imbalance(self):
        # No active_cycles vector, but the telemetry sidecar carries
        # per-unit cycle counters: the skew must come from them.
        counters = {f"unit.{i}.active_cycles": 100.0 for i in range(30)}
        counters["unit.30.active_cycles"] = 2000.0
        counters["unit.31.active_cycles"] = 2000.0
        profile = attribute_point({
            "makespan_cycles": 2000.0,
            "mean_core_cycles": 110.0,
            "busiest_core_cycles": 2000.0,
        }, telemetry={"meta": {"num_units": 32}, "counters": counters},
            config=small_config())
        assert "unit_cycles" in profile.inputs
        assert profile.imbalance > SKEW_THRESHOLD


class TestAttributionDeterminism:
    def test_same_inputs_same_profile_bytes(self):
        metrics = {"makespan_cycles": 1000.0, "mean_core_cycles": 400.0,
                   "busiest_core_cycles": 700.0, "dram_reads": 900.0,
                   "inter_hops": 1500.0, "cache_hits": 200.0}
        one = attribute_point(metrics, config=small_config())
        two = attribute_point(metrics, config=small_config())
        assert json.dumps(one.to_dict(), sort_keys=True) == \
            json.dumps(two.to_dict(), sort_keys=True)

    def test_profile_dict_round_trip(self):
        profile = attribute_point({
            "makespan_cycles": 1000.0, "mean_core_cycles": 900.0,
            "busiest_core_cycles": 950.0,
        }, config=small_config())
        again = BottleneckProfile.from_dict(profile.to_dict())
        assert again.to_dict() == profile.to_dict()

    def test_occupancy_covers_every_class(self):
        profile = attribute_point({"makespan_cycles": 10.0},
                                  config=small_config())
        assert set(profile.to_dict()["occupancy"]) == \
            set(BOTTLENECK_CLASSES)


class TestLinkAccounting:
    def test_mesh_link_count(self):
        assert mesh_link_count(1, 1) == 0
        assert mesh_link_count(2, 2) == 8
        assert mesh_link_count(4, 4) == 48

    def test_xy_route_attribution(self):
        # 4 stacks of 1 unit on a 2x2 mesh: 0 -> 3 goes column first
        # (s0->s1) then row (s1->s3); both links carry the 10 msgs.
        matrix = [[0.0] * 4 for _ in range(4)]
        matrix[0][3] = 10.0
        loads = link_loads_from_unit_matrix(matrix, 1, 2, 2)
        assert loads == {(0, 1): 10.0, (1, 3): 10.0}

    def test_intra_stack_traffic_ignored(self):
        matrix = [[0.0, 5.0], [5.0, 0.0]]
        assert link_loads_from_unit_matrix(matrix, 2, 2, 2) == {}


# ----------------------------------------------------------------------
# report generator: determinism over a sweep export
# ----------------------------------------------------------------------
class TestReport:
    def _rows_file(self, tmp_path):
        rows = [
            {"design": "B", "workload": "pr", "makespan_cycles": 1000.0,
             "mean_core_cycles": 900.0, "busiest_core_cycles": 950.0},
            {"design": "O", "workload": "pr", "makespan_cycles": 1000.0,
             "mean_core_cycles": 100.0, "busiest_core_cycles": 100.0,
             "dram_reads": 4000.0},
        ]
        path = tmp_path / "rows.json"
        path.write_text(json.dumps(rows), encoding="utf-8")
        return path

    def test_report_json_byte_identical(self, tmp_path):
        path = self._rows_file(tmp_path)
        assert build_report(path).to_json() == build_report(path).to_json()

    def test_matrix_and_markdown(self, tmp_path):
        report = build_report(self._rows_file(tmp_path))
        matrix = report.matrix()
        assert set(matrix) == {"pr"}
        assert set(matrix["pr"]) == {"B", "O"}
        for cell in matrix["pr"].values():
            assert cell["primary"] in BOTTLENECK_CLASSES
            assert cell["confidence"] > 0.0
        md = report.to_markdown()
        assert "| workload |" in md
        assert "pr" in md

    def test_unrecognizable_input_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("42", encoding="utf-8")
        with pytest.raises(ValueError):
            build_report(bad)


# ----------------------------------------------------------------------
# trace correlation: pure annotation, never semantics
# ----------------------------------------------------------------------
class TestTraceCorrelation:
    def test_trace_id_never_enters_the_run_key(self):
        plain = ExperimentSpec.from_dict(
            {"design": "B", "workload": "pr", "mesh": "2x2"})
        traced = ExperimentSpec.from_dict(
            {"design": "B", "workload": "pr", "mesh": "2x2",
             "trace_id": mint_trace_id()})
        assert traced.trace_id
        assert traced.run_key() == plain.run_key()

    def test_spec_serializes_trace_id_only_when_set(self):
        spec = ExperimentSpec.from_dict({"design": "B", "workload": "pr"})
        assert "trace_id" not in spec.to_dict()
        spec = ExperimentSpec.from_dict(
            {"design": "B", "workload": "pr", "trace_id": "abc123"})
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again.trace_id == "abc123"

    def test_mint_trace_id_shape(self):
        a, b = mint_trace_id(), mint_trace_id()
        assert len(a) == 16 and int(a, 16) >= 0
        assert a != b

    def test_progress_event_wire_format_unchanged_when_untraced(self):
        bare = ProgressEvent(event="done", label="B/pr")
        assert "trace_id" not in bare.to_dict()
        traced = ProgressEvent(event="done", label="B/pr",
                               trace_id="abc123")
        assert traced.to_dict()["trace_id"] == "abc123"
        assert ProgressEvent(**traced.to_dict()).to_dict() == \
            traced.to_dict()

    def test_campaign_trace_events_carry_the_trace_id(self):
        report = {
            "name": "demo", "trace_id": "feedc0de00000000",
            "points": [
                {"label": "B/pr", "spec": {"design": "B"},
                 "elapsed_s": 1.0, "key": "k1", "source": "run"},
                {"label": "O/pr", "spec": {"design": "O"},
                 "elapsed_s": 0.5, "key": "k2", "source": "cache"},
            ],
        }
        events = campaign_trace_events(report)
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2
        assert all(e["args"]["trace_id"] == "feedc0de00000000"
                   for e in spans)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"design B", "design O"}

    def test_merge_rehomes_extra_trace_pids(self):
        base = [{"name": "a", "ph": "X", "pid": 1, "tid": 0,
                 "ts": 0, "dur": 1, "args": {}}]
        extra = {"traceEvents": [
            {"name": "b", "ph": "X", "pid": 1, "tid": 0,
             "ts": 0, "dur": 1, "args": {}}]}
        merged = merge_chrome_traces(base, [extra])
        pids = [e["pid"] for e in merged["traceEvents"]]
        assert len(set(pids)) == 2

    def test_write_campaign_trace_deterministic(self, tmp_path):
        report = {"name": "demo", "trace_id": "00aa00aa00aa00aa",
                  "fingerprint": "f00",
                  "points": [{"label": "B/pr", "spec": {"design": "B"},
                              "elapsed_s": 1.0, "key": "k1"}]}
        one = write_campaign_trace(report, tmp_path / "t1.json")
        two = write_campaign_trace(report, tmp_path / "t2.json")
        assert one.read_bytes() == two.read_bytes()
        payload = json.loads(one.read_text())
        assert payload["otherData"]["trace_id"] == "00aa00aa00aa00aa"


# ----------------------------------------------------------------------
# Prometheus metrics plane
# ----------------------------------------------------------------------
class TestMetricsPlane:
    def test_render_headers_and_samples(self):
        fam = MetricFamily("demo_total", "counter", "A demo counter.")
        fam.add(3, route="submit", method="POST")
        fam.add(2.5, route="health", method="GET")
        text = render_exposition([fam])
        assert "# HELP demo_total A demo counter." in text
        assert "# TYPE demo_total counter" in text
        # labels render sorted by name; integral floats drop the ".0"
        assert 'demo_total{method="POST",route="submit"} 3' in text
        assert 'demo_total{method="GET",route="health"} 2.5' in text
        assert text.endswith("\n")

    def test_sampleless_family_renders_zero(self):
        text = render_exposition(
            [MetricFamily("idle_gauge", "gauge", "nothing yet")])
        assert "idle_gauge 0" in text

    def test_label_and_help_escaping(self):
        fam = MetricFamily("esc_total", "counter", "line\nbreak")
        fam.add(1, path='a"b\\c')
        text = render_exposition([fam])
        assert "# HELP esc_total line\\nbreak" in text
        assert 'esc_total{path="a\\"b\\\\c"} 1' in text

    def test_runtime_families_are_passive(self):
        families = runtime_metric_families()
        names = [f.name for f in families]
        assert all(n.startswith("repro_runtime_") for n in names)
        assert "repro_runtime_memo_events_total" in names
        assert "repro_runtime_shm_bytes" in names
        # a scrape of an idle process renders without error
        text = render_exposition(families)
        assert 'kind="workload_hits"' in text


@pytest.fixture
def metrics_server(tmp_path, monkeypatch):
    """A thread-mode server with a stubbed simulation entry point,
    for scraping /v1/metrics against live counters."""
    from repro.service.client import ServiceClient
    from repro.service.server import run_in_thread

    def fake(design, workload, config, telemetry=None,
             fault_schedule=None):
        name = getattr(workload, "name", str(workload))
        return fake_result(design=design, workload=name)

    monkeypatch.setattr(runner_mod, "_live_simulate", fake)
    handle = run_in_thread(workers=0,
                           cache_root=str(tmp_path / "srv_cache"))
    client = ServiceClient(handle.base_url, timeout=60.0)
    yield client
    handle.stop()


class TestServerMetrics:
    def test_scrape_content_type_and_families(self, metrics_server):
        content_type, text = metrics_server.metrics()
        assert content_type == PROMETHEUS_CONTENT_TYPE
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE ")]
        assert len(families) >= 12
        for name in ("repro_server_requests_total",
                     "repro_server_jobs_in_flight",
                     "repro_cache_ops_total",
                     "repro_runtime_memo_events_total"):
            assert f"# TYPE {name}" in text

    def test_counters_move_with_traffic(self, metrics_server):
        answer = metrics_server.submit(
            {"design": "O", "workload": "pr"}, wait=True)
        assert answer["status"] == "done"
        _, text = metrics_server.metrics()
        assert 'repro_server_requests_total{method="POST",' \
            'route="submit"} 1' in text
        assert 'repro_server_ops_total{op="executions"} 1' in text
        assert "repro_cache_entries 1" in text


# ----------------------------------------------------------------------
# telemetry schema versioning
# ----------------------------------------------------------------------
class TestSummaryVersion:
    def test_current_version_everywhere(self):
        summary = TelemetrySummary()
        assert SUMMARY_VERSION == 2
        assert summary.version == SUMMARY_VERSION
        assert summary.to_dict()["version"] == SUMMARY_VERSION
        assert summary.digest()["version"] == SUMMARY_VERSION

    def test_preversion_sidecars_read_as_v1(self):
        assert TelemetrySummary.from_dict({}).version == 1

    def test_diff_warns_on_version_mismatch(self):
        a = RunHandle(ref="a", result=fake_result(), wall_s=1.0,
                      telemetry={"version": 1, "counters": {}})
        b = RunHandle(ref="b", result=fake_result(), wall_s=1.0,
                      telemetry={"version": 2, "counters": {}})
        diff = diff_runs(a, b)
        assert any("schema versions differ" in w for w in diff.warnings)

    def test_diff_silent_on_matching_versions(self):
        a = RunHandle(ref="a", result=fake_result(), wall_s=1.0,
                      telemetry={"version": 2, "counters": {}})
        b = RunHandle(ref="b", result=fake_result(), wall_s=1.0,
                      telemetry={"version": 2, "counters": {}})
        diff = diff_runs(a, b)
        assert not any("schema versions" in w for w in diff.warnings)

    def test_diff_reports_bottleneck_transition(self):
        a = RunHandle(ref="a", result=fake_result(), wall_s=1.0)
        b = RunHandle(ref="b", result=fake_result(), wall_s=1.0)
        diff = diff_runs(a, b)
        assert diff.bottleneck is not None
        assert diff.bottleneck["a"] in BOTTLENECK_CLASSES
        assert diff.bottleneck["b"] in BOTTLENECK_CLASSES
        assert diff.bottleneck["changed"] is False


# ----------------------------------------------------------------------
# zero-overhead regression guard
# ----------------------------------------------------------------------
class TestZeroOverhead:
    def test_disabled_runs_stay_byte_identical_and_silent(
            self, tmp_path, monkeypatch):
        """Attribution and the metrics plane must cost an uninstrumented
        run nothing: two NULL_TELEMETRY runs produce byte-identical
        cache entries, no sidecar, and zero sampler callbacks."""
        cfg = small_config()
        wl = repro.make_workload("kmeans", num_points=64, iterations=1)
        blobs = []
        for sub in ("c1", "c2"):
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / sub))
            cached_simulate("B", wl, cfg)
            cache = default_cache()
            key = run_key("B", wl, cfg)
            entry = json.loads(cache.path_for(key).read_text())
            # created_unix is the entry's only wall-clock field; mask
            # it so the comparison pins every semantic byte.
            entry["meta"].pop("created_unix", None)
            blobs.append(json.dumps(entry, sort_keys=True))
            assert cache.load_telemetry(key) is None
        assert blobs[0] == blobs[1]
        assert NULL_TELEMETRY.sampler.callbacks_invoked == 0
        assert len(NULL_TELEMETRY.timeline) == 0
