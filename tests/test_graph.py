"""Unit + property tests for the CSR graph container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.graph import Graph


class TestFromEdges:
    def test_symmetric_by_default(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2)])
        assert 0 in g.neighbors(1)
        assert 1 in g.neighbors(0)
        assert g.num_edges == 4

    def test_asymmetric_when_requested(self):
        g = Graph.from_edges(4, [(0, 1)], symmetric=False)
        assert 1 in g.neighbors(0)
        assert g.degree(1) == 0

    def test_duplicates_removed(self):
        g = Graph.from_edges(3, [(0, 1), (0, 1), (1, 0)])
        assert g.degree(0) == 1 and g.degree(1) == 1

    def test_weights_follow_edges(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[5.0, 7.0])
        w01 = dict(zip(g.neighbors(0).tolist(),
                       g.edge_weights(0).tolist()))[1]
        assert w01 == 5.0

    def test_empty_graph(self):
        g = Graph.from_edges(5, [])
        assert g.num_edges == 0
        assert g.degree(3) == 0

    def test_out_of_range_edges_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 5)])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 1)], weights=[1.0, 2.0])

    def test_bad_edge_shape(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 1, 2)])


class TestValidation:
    def test_indptr_length(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([0, 1]), np.array([1]))

    def test_indptr_span(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([0, 1, 5]), np.array([1]))

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([0, 2, 1]), np.array([1, 0]))

    def test_weights_length(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([0, 1, 2]), np.array([1, 0]),
                  weights=np.array([1.0]))

    def test_edge_weights_without_weights(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.edge_weights(0)


class TestQueries:
    def test_degrees_and_max(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.max_degree_vertex() == 0
        assert g.degrees.tolist() == [3, 1, 1, 1]

    def test_connected_component(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (4, 5)])
        comp = g.connected_component_of(0)
        assert set(comp.tolist()) == {0, 1, 2}
        comp2 = g.connected_component_of(4)
        assert set(comp2.tolist()) == {4, 5}


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 40),
    edges=st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39)),
        min_size=0, max_size=120,
    ),
)
def test_property_csr_well_formed(n, edges):
    edges = [(a % n, b % n) for a, b in edges if a % n != b % n]
    g = Graph.from_edges(n, edges)
    # CSR invariants
    assert g.indptr[0] == 0 and g.indptr[-1] == len(g.indices)
    assert (np.diff(g.indptr) >= 0).all()
    # Symmetry
    for v in range(n):
        for u in g.neighbors(v):
            assert v in g.neighbors(int(u))
    # Degree sum equals directed edge count
    assert g.degrees.sum() == g.num_edges
