"""Tests for the trace recorder, the dataset file loaders, the CC
extension workload, and the command-line interface."""

import io
import json

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main
from repro.config import experiment_config
from repro.core.system import build_system
from repro.runtime.trace import TaskRecord, TaskTraceRecorder
from repro.workloads.io import (
    load_matrix_market,
    load_snap_edges,
    save_snap_edges,
)
from repro.workloads.graph import Graph


class TestTraceRecorder:
    def _record(self, i=0, spawner=0, unit=0, stolen=False):
        return TaskRecord(
            task_id=i, timestamp=0, spawner_unit=spawner,
            assigned_unit=unit, start_cycles=0.0, duration_cycles=10.0,
            stall_ns=2.0, hint_lines=3, stolen=stolen,
        )

    def test_capacity_drops_oldest(self):
        rec = TaskTraceRecorder(capacity=2)
        for i in range(4):
            rec.record(self._record(i))
        assert len(rec) == 2
        assert rec.dropped == 2
        assert [r.task_id for r in rec] == [2, 3]

    def test_migrated_and_stolen_fractions(self):
        rec = TaskTraceRecorder()
        rec.record(self._record(0, spawner=1, unit=1))
        rec.record(self._record(1, spawner=1, unit=5, stolen=True))
        assert rec.migrated_fraction() == pytest.approx(0.5)
        assert rec.stolen_fraction() == pytest.approx(0.5)

    def test_per_unit_counts(self):
        rec = TaskTraceRecorder()
        rec.record(self._record(0, unit=2))
        rec.record(self._record(1, unit=2))
        rec.record(self._record(2, unit=0))
        counts = rec.per_unit_task_counts(4)
        assert counts.tolist() == [1, 0, 2, 0]

    def test_executor_integration(self):
        system = build_system("O", experiment_config().scaled(2, 2))
        recorder = TaskTraceRecorder()
        system.executor.recorder = recorder
        wl = repro.make_workload("kmeans", num_points=128, iterations=2)
        state = wl.setup(system)
        system.executor.run(wl.root_tasks(state), state=state,
                            on_barrier=wl.on_barrier)
        assert len(recorder) == 256
        counts = recorder.per_phase_task_counts()
        assert counts == {0: 128, 1: 128}
        # kmeans on a balanced system: tasks stay home.
        assert recorder.migrated_fraction() < 0.1
        summary = recorder.placement_summary(
            system.interconnect.cost_matrix)
        assert "tasks=256" in summary

    def test_rows_export(self):
        rec = TaskTraceRecorder()
        rec.record(self._record(7, unit=3))
        rows = rec.to_rows()
        assert rows[0]["task_id"] == 7
        assert rows[0]["assigned_unit"] == 3


SNAP_TEXT = """# Directed graph: example
# Nodes: 4 Edges: 3
10\t20
20\t30
10\t40
"""

MTX_TEXT = """%%MatrixMarket matrix coordinate real general
% comment
3 3 4
1 1 2.0
1 3 -1.0
2 2 5.0
3 1 4.0
"""

MTX_SYM = """%%MatrixMarket matrix coordinate pattern symmetric
2 2 2
1 1
2 1
"""


class TestSnapLoader:
    def test_basic_parse(self):
        g = load_snap_edges(io.StringIO(SNAP_TEXT))
        assert g.num_vertices == 4
        # symmetric by default: 3 undirected edges = 6 directed
        assert g.num_edges == 6

    def test_id_compaction(self):
        g = load_snap_edges(io.StringIO(SNAP_TEXT))
        # node "10" was seen first -> id 0, with neighbors 20 and 40
        assert g.degree(0) == 2

    def test_weighted(self):
        text = "1 2 3.5\n2 3 1.5\n"
        g = load_snap_edges(io.StringIO(text), weighted=True)
        assert g.weights is not None
        assert 3.5 in g.edge_weights(0)

    def test_self_loops_dropped(self):
        g = load_snap_edges(io.StringIO("1 1\n1 2\n"))
        assert g.num_edges == 2

    def test_bad_line(self):
        with pytest.raises(ValueError):
            load_snap_edges(io.StringIO("justonecolumn\n42\n"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_snap_edges(io.StringIO("# nothing\n"))

    def test_roundtrip_via_file(self, tmp_path):
        g = load_snap_edges(io.StringIO(SNAP_TEXT))
        path = tmp_path / "g.txt"
        save_snap_edges(g, str(path))
        g2 = load_snap_edges(str(path))
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges


class TestMatrixMarketLoader:
    def test_general_real(self):
        m = load_matrix_market(io.StringIO(MTX_TEXT))
        assert (m.rows, m.cols, m.nnz) == (3, 3, 4)
        cols, vals = m.row_slice(0)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [2.0, -1.0]

    def test_symmetric_pattern(self):
        m = load_matrix_market(io.StringIO(MTX_SYM))
        # the off-diagonal entry is mirrored
        assert m.nnz == 3
        assert set(m.row_slice(0)[0].tolist()) == {0, 1}

    def test_rejects_non_mm(self):
        with pytest.raises(ValueError):
            load_matrix_market(io.StringIO("hello\n"))

    def test_loaded_matrix_runs_spmv(self):
        from repro.workloads.spmv import SpmvWorkload

        m = load_matrix_market(io.StringIO(MTX_TEXT))
        wl = SpmvWorkload(matrix=m, iterations=2)
        repro.simulate("B", wl, verify=True)


class TestCcWorkload:
    def test_correct_on_designs(self):
        wl = repro.make_workload("cc", num_vertices=512)
        repro.simulate("B", wl, verify=True)
        repro.simulate("O", repro.make_workload("cc", num_vertices=512),
                       verify=True)

    def test_multiple_components(self):
        # two disjoint triangles
        g = Graph.from_edges(6, [(0, 1), (1, 2), (2, 0),
                                 (3, 4), (4, 5), (5, 3)])
        from repro.workloads.cc import ConnectedComponentsWorkload

        wl = ConnectedComponentsWorkload(graph=g)
        ref = wl.reference_labels()
        assert ref.tolist() == [0, 0, 0, 3, 3, 3]
        repro.simulate("B", wl, verify=True)


class TestCli:
    def test_designs(self, capsys):
        assert cli_main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "traveller" in out and "work_stealing" in out

    def test_describe_with_mesh(self, capsys):
        assert cli_main(["describe", "--mesh", "2x2"]) == 0
        assert "2x2 stacks" in capsys.readouterr().out

    def test_run_with_export(self, capsys, tmp_path):
        csv = tmp_path / "r.csv"
        rc = cli_main([
            "run", "-d", "B", "-w", "kmeans", "--mesh", "2x2",
            "--csv", str(csv),
        ])
        assert rc == 0
        assert csv.read_text().startswith("design,")
        assert "kmeans" in capsys.readouterr().out

    def test_sweep_camps(self, capsys, tmp_path):
        js = tmp_path / "s.json"
        rc = cli_main([
            "sweep", "camps", "-d", "O", "-w", "kmeans",
            "--json", str(js),
        ])
        assert rc == 0
        assert len(json.loads(js.read_text())) == 4

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "-w", "nope"])
