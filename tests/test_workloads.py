"""Workload correctness: every application's simulated answer matches
an independent reference implementation, on multiple designs.

These are the strongest integration tests in the suite: they exercise
the allocator, the schedulers, the caches, the executor and the task
bodies end to end — any misordering of phases, lost task, or stale
double-buffer shows up as a wrong answer.
"""

import numpy as np
import pytest

import repro
from repro.config import experiment_config
from repro.workloads.astar import AStarWorkload
from repro.workloads.bfs import BfsWorkload
from repro.workloads.gcn import GcnWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.knn import KnnWorkload, build_kdtree, kd_search
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.sssp import SsspWorkload

SMALL = dict(
    pr=lambda: PageRankWorkload(num_vertices=512, iterations=3),
    bfs=lambda: BfsWorkload(num_vertices=512),
    sssp=lambda: SsspWorkload(num_vertices=512),
    astar=lambda: AStarWorkload(rows=32, cols=32),
    gcn=lambda: GcnWorkload(num_vertices=512, feature_dim=8),
    kmeans=lambda: KMeansWorkload(num_points=512, iterations=2),
    knn=lambda: KnnWorkload(num_points=512, num_queries=64),
    spmv=lambda: SpmvWorkload(rows=512, iterations=2),
)


@pytest.mark.parametrize("name", sorted(SMALL))
@pytest.mark.parametrize("design", ["B", "O"])
def test_workload_correct_on_design(name, design):
    """The headline designs compute the right answer for everything."""
    wl = SMALL[name]()
    repro.simulate(design, wl, verify=True)


@pytest.mark.parametrize("design", ["Sm", "Sl", "Sh", "C"])
def test_pagerank_correct_on_every_design(design):
    """Scheduling policy and caching never change the computation."""
    repro.simulate(design, SMALL["pr"](), verify=True)


@pytest.mark.parametrize("name", ["knn", "spmv", "sssp"])
@pytest.mark.parametrize("design", ["Sl", "C"])
def test_hot_data_workloads_on_more_designs(name, design):
    repro.simulate(design, SMALL[name](), verify=True)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_workloads_on_small_machine(name):
    """Correctness is machine-shape independent (2x2 mesh)."""
    from repro.config import experiment_config

    cfg = experiment_config().scaled(2, 2)
    repro.simulate("O", SMALL[name](), cfg, verify=True)


class TestWorkloadShapes:
    def test_pagerank_task_count(self):
        wl = SMALL["pr"]()
        r = repro.simulate("B", wl)
        assert r.tasks_executed == 512 * 3
        assert r.timestamps_executed == 3

    def test_bfs_visits_component_once(self):
        wl = SMALL["bfs"]()
        r = repro.simulate("B", wl)
        reachable = (wl.reference_distances() >= 0).sum()
        assert r.tasks_executed == reachable

    def test_kmeans_tasks_all_local(self):
        wl = SMALL["kmeans"]()
        r = repro.simulate("B", wl)
        assert r.traffic.inter_hops == 0
        assert r.traffic.intra_transfers == 0

    def test_knn_hint_matches_search_path(self):
        """The hint lists exactly the nodes/points the search visits."""
        wl = SMALL["knn"]()
        system = repro.build_system("B", experiment_config())
        state = wl.setup(system)
        tasks = wl.root_tasks(state)
        q = 0
        _, _, visited, scanned = kd_search(state.tree, state.queries[q],
                                           state.k)
        expected = 1 + len(visited) + len(scanned)
        assert tasks[q].hint.num_addresses == expected

    def test_spmv_hint_covers_row_and_vector(self):
        wl = SMALL["spmv"]()
        system = repro.build_system("B", experiment_config())
        state = wl.setup(system)
        tasks = wl.root_tasks(state)
        cols, _ = state.matrix.row_slice(0)
        assert tasks[0].hint.num_addresses >= len(cols) + 1

    def test_gcn_runs_one_phase_per_layer(self):
        wl = SMALL["gcn"]()
        r = repro.simulate("B", wl)
        assert r.timestamps_executed == wl.num_layers

    def test_astar_stops_when_goal_settled(self):
        wl = SMALL["astar"]()
        r = repro.simulate("B", wl)
        # Far fewer waves than the worst-case bound.
        assert r.timestamps_executed < wl.max_rounds


class TestKdTree:
    def test_leaves_partition_points(self):
        pts = np.random.default_rng(0).normal(size=(300, 3))
        tree = build_kdtree(pts, leaf_size=16)
        members = []
        for node in range(tree.num_nodes):
            if tree.is_leaf(node):
                members.extend(tree.leaf_members(node).tolist())
        assert sorted(members) == list(range(300))

    def test_leaf_size_respected(self):
        pts = np.random.default_rng(1).normal(size=(200, 2))
        tree = build_kdtree(pts, leaf_size=10)
        for node in range(tree.num_nodes):
            if tree.is_leaf(node):
                assert tree.leaf_count[node] <= 10

    def test_search_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(256, 4))
        tree = build_kdtree(pts, leaf_size=8)
        for _ in range(20):
            q = rng.normal(size=4)
            idx, dists, _, _ = kd_search(tree, q, k=3)
            brute = np.argsort(((pts - q) ** 2).sum(axis=1))[:3]
            d_found = np.sort(((pts[idx] - q) ** 2).sum(axis=1))
            d_true = np.sort(((pts[brute] - q) ** 2).sum(axis=1))
            assert np.allclose(d_found, d_true)

    def test_search_path_contains_root_and_a_leaf(self):
        pts = np.random.default_rng(3).normal(size=(128, 2))
        tree = build_kdtree(pts, leaf_size=8)
        _, _, visited, scanned = kd_search(tree, np.zeros(2), k=1)
        assert visited[0] == 0
        assert any(tree.is_leaf(n) for n in visited)
        assert scanned


class TestWorkloadRegistry:
    def test_all_registered(self):
        assert set(repro.ALL_WORKLOADS) <= set(repro.WORKLOAD_FACTORIES)

    def test_make_workload_unknown(self):
        with pytest.raises(KeyError):
            repro.make_workload("sorting-networks")

    def test_make_workload_kwargs(self):
        wl = repro.make_workload("pr", num_vertices=300, iterations=2)
        assert wl.graph.num_vertices == 300
        assert wl.iterations == 2
