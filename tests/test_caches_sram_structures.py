"""Unit + property tests for the L1 cache and prefetch buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.l1cache import L1Cache
from repro.arch.prefetch import PrefetchBuffer
from repro.config import MemoryConfig, SramConfig


class TestL1Cache:
    def test_miss_then_hit(self):
        l1 = L1Cache(4096, 4)
        assert not l1.lookup(42)
        l1.insert(42)
        assert l1.lookup(42)
        assert l1.stats.hits == 1 and l1.stats.misses == 1

    def test_lru_eviction_order(self):
        l1 = L1Cache(4 * 64, 4, 64)  # one set, 4 ways
        for line in [0, 1, 2, 3]:
            l1.insert(line)
        l1.lookup(0)  # refresh 0: LRU is now 1
        victim = l1.insert(4)
        assert victim == 1
        assert l1.contains(0) and not l1.contains(1)

    def test_set_isolation(self):
        l1 = L1Cache(2 * 4 * 64, 4, 64)  # two sets
        even = [0, 2, 4, 6, 8]   # all map to set 0
        for line in even:
            l1.insert(line)
        # set 1 lines unaffected
        l1.insert(1)
        assert l1.contains(1)

    def test_reinsert_is_not_eviction(self):
        l1 = L1Cache(4 * 64, 4, 64)
        l1.insert(7)
        assert l1.insert(7) is None
        assert l1.occupancy() == 1

    def test_invalidate_all(self):
        l1 = L1Cache(4096, 4)
        for line in range(10):
            l1.insert(line)
        l1.invalidate_all()
        assert l1.occupancy() == 0
        assert not l1.contains(0)

    def test_contains_does_not_mutate_stats(self):
        l1 = L1Cache(4096, 4)
        l1.insert(5)
        before = (l1.stats.hits, l1.stats.misses)
        l1.contains(5)
        l1.contains(6)
        assert (l1.stats.hits, l1.stats.misses) == before

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            L1Cache(100, 4, 64)

    def test_from_config(self):
        l1 = L1Cache.from_config(SramConfig(), MemoryConfig())
        assert l1.num_sets == 64 * 1024 // (4 * 64)

    def test_hit_rate(self):
        l1 = L1Cache(4096, 4)
        l1.lookup(1)
        l1.insert(1)
        l1.lookup(1)
        assert l1.stats.hit_rate == pytest.approx(0.5)


class TestPrefetchBuffer:
    def test_fifo_eviction(self):
        buf = PrefetchBuffer(4 * 64, 64)  # 4 lines
        for line in [10, 11, 12, 13]:
            buf.insert(line)
        buf.insert(14)  # evicts 10 (oldest)
        assert not buf.contains(10)
        assert buf.contains(14)
        assert buf.stats.evictions == 1

    def test_lookup_does_not_refresh_fifo_order(self):
        buf = PrefetchBuffer(2 * 64, 64)
        buf.insert(1)
        buf.insert(2)
        assert buf.lookup(1)       # a hit...
        buf.insert(3)              # ...but 1 is still the oldest
        assert not buf.contains(1)

    def test_duplicate_insert_is_noop(self):
        buf = PrefetchBuffer(4 * 64, 64)
        buf.insert(9)
        buf.insert(9)
        assert buf.occupancy() == 1
        assert buf.stats.issued == 1

    def test_invalidate_all(self):
        buf = PrefetchBuffer(4 * 64, 64)
        buf.insert(1)
        buf.invalidate_all()
        assert buf.occupancy() == 0

    def test_minimum_one_line(self):
        buf = PrefetchBuffer(1, 64)
        buf.insert(5)
        assert buf.contains(5)

    def test_hit_counting(self):
        buf = PrefetchBuffer(256, 64)
        buf.insert(3)
        buf.lookup(3)
        buf.lookup(4)
        assert buf.stats.buffer_hits == 1


@settings(max_examples=30, deadline=None)
@given(
    lines=st.lists(st.integers(0, 1000), min_size=1, max_size=200),
    assoc=st.sampled_from([1, 2, 4]),
    sets=st.sampled_from([2, 8, 32]),
)
def test_property_l1_occupancy_bounded(lines, assoc, sets):
    """Occupancy never exceeds capacity; a just-inserted line is present."""
    l1 = L1Cache(sets * assoc * 64, assoc, 64)
    for line in lines:
        if not l1.lookup(line):
            l1.insert(line)
        assert l1.contains(line)
        assert l1.occupancy() <= sets * assoc


@settings(max_examples=30, deadline=None)
@given(lines=st.lists(st.integers(0, 100), min_size=1, max_size=100))
def test_property_prefetch_buffer_capacity_invariant(lines):
    buf = PrefetchBuffer(8 * 64, 64)
    for line in lines:
        buf.insert(line)
        assert buf.occupancy() <= 8
        assert buf.contains(line)
