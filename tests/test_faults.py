"""Tests for the fault-injection & resilience subsystem (repro.faults)."""

import numpy as np
import pytest

import repro
from repro.arch.memory_map import MemoryMap
from repro.arch.topology import Topology
from repro.config import (
    CacheConfig,
    MemoryConfig,
    TopologyConfig,
    experiment_config,
)
from repro.core.cache.camp import CampMapper
from repro.core.system import build_system
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ResilienceStats,
    make_random_schedule,
    run_fault_campaign,
)
from repro.sweep.keys import run_key
from repro.sweep.serialize import result_from_dict, result_to_dict


def small_cfg():
    """2x2 stacks (32 units) keeps faulted end-to-end runs fast."""
    return experiment_config().scaled(2, 2)


def small_workload():
    return repro.make_workload("pr", num_vertices=256, iterations=2)


# ----------------------------------------------------------------------
# schedule declaration & serialization
# ----------------------------------------------------------------------
class TestFaultEvent:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one trigger"):
            FaultEvent(FaultKind.UNIT_FAIL, unit=3).validate()
        with pytest.raises(ValueError, match="exactly one trigger"):
            FaultEvent(FaultKind.UNIT_FAIL, unit=3, at_timestamp=1,
                       probability=0.5).validate()

    def test_kind_needs_matching_target(self):
        with pytest.raises(ValueError, match="needs a unit"):
            FaultEvent(FaultKind.UNIT_FAIL, at_timestamp=1).validate()
        with pytest.raises(ValueError, match="needs a .*link"):
            FaultEvent(FaultKind.LINK_FAIL, at_timestamp=1).validate()

    def test_degradations_need_factor_above_one(self):
        with pytest.raises(ValueError, match="factor > 1"):
            FaultEvent(FaultKind.VAULT_SLOW, unit=0, at_timestamp=1,
                       factor=1.0).validate()
        with pytest.raises(ValueError, match="factor > 1"):
            FaultEvent(FaultKind.LINK_DEGRADE, link=(0, 1), at_timestamp=1,
                       factor=0.5).validate()

    def test_dict_round_trip(self):
        ev = FaultEvent(FaultKind.LINK_DEGRADE, link=(2, 3), at_timestamp=4,
                        duration_phases=2, factor=3.0)
        assert FaultEvent.from_dict(ev.to_dict()) == ev

    def test_transient_duration_must_be_positive(self):
        with pytest.raises(ValueError, match="duration_phases"):
            FaultEvent(FaultKind.UNIT_FAIL, unit=0, at_timestamp=1,
                       duration_phases=0).validate()


class TestFaultSchedule:
    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert len(FaultSchedule()) == 0
        sched = FaultSchedule.unit_failures([1, 2])
        assert sched and len(sched) == 2

    def test_json_file_round_trip(self, tmp_path):
        sched = FaultSchedule((
            FaultEvent(FaultKind.UNIT_FAIL, unit=7, at_timestamp=1),
            FaultEvent(FaultKind.LINK_FAIL, link=(0, 1), probability=0.25),
            FaultEvent(FaultKind.VAULT_SLOW, unit=3, at_timestamp=2,
                       factor=4.0, duration_phases=5),
        ))
        path = tmp_path / "sched.json"
        sched.dump(str(path))
        assert FaultSchedule.load(str(path)) == sched

    def test_random_schedule_is_seed_deterministic(self):
        topo = Topology(TopologyConfig(), num_groups=4)
        links = topo.mesh_links()
        a = make_random_schedule(topo.num_units, links, unit_fails=4,
                                 link_fails=2, vault_slowdowns=1, seed=7)
        b = make_random_schedule(topo.num_units, links, unit_fails=4,
                                 link_fails=2, vault_slowdowns=1, seed=7)
        c = make_random_schedule(topo.num_units, links, unit_fails=4,
                                 link_fails=2, vault_slowdowns=1, seed=8)
        assert a == b
        assert a != c
        kinds = [ev.kind for ev in a.events]
        assert kinds.count(FaultKind.UNIT_FAIL) == 4
        assert kinds.count(FaultKind.LINK_FAIL) == 2
        assert kinds.count(FaultKind.VAULT_SLOW) == 1
        a.validate()

    def test_random_schedule_rejects_killing_every_unit(self):
        topo = Topology(TopologyConfig(), num_groups=4)
        with pytest.raises(ValueError, match="every unit"):
            make_random_schedule(topo.num_units, topo.mesh_links(),
                                 unit_fails=topo.num_units)


# ----------------------------------------------------------------------
# cache-key and serialization compatibility
# ----------------------------------------------------------------------
class TestKeyCompatibility:
    def test_fault_free_key_is_unchanged_by_subsystem(self):
        cfg = small_cfg()
        wl = small_workload()
        # a schedule must change the key; its absence must not.
        base = run_key("O", wl, cfg)
        assert base == run_key("O", wl, cfg, extra=None)
        sched = FaultSchedule.unit_failures([1])
        assert run_key("O", wl, cfg, extra={"faults": sched}) != base

    def test_different_schedules_get_different_keys(self):
        cfg = small_cfg()
        wl = small_workload()
        k1 = run_key("O", wl, cfg,
                     extra={"faults": FaultSchedule.unit_failures([1])})
        k2 = run_key("O", wl, cfg,
                     extra={"faults": FaultSchedule.unit_failures([2])})
        assert k1 != k2

    def test_fault_free_result_serializes_without_resilience(self):
        r = repro.simulate("B", small_workload(), small_cfg())
        d = result_to_dict(r)
        assert "resilience" not in d
        assert result_from_dict(d).resilience is None

    def test_resilience_stats_round_trip(self):
        stats = ResilienceStats(unit_failures=2, tasks_reexecuted=9,
                                recovery_cycles=2100.0,
                                unreachable_accesses=17)
        assert ResilienceStats.from_dict(stats.to_dict()) == stats


# ----------------------------------------------------------------------
# camp remapping around dead units
# ----------------------------------------------------------------------
class TestCampRemap:
    def _mapper(self):
        cfg = small_cfg()
        cache = CacheConfig(num_camps=3)
        topo = Topology(cfg.topology, num_groups=cache.num_groups())
        memmap = MemoryMap(topo, MemoryConfig())
        return topo, CampMapper(topo, memmap, cache)

    def test_all_alive_mask_is_identity(self):
        topo, mapper = self._mapper()
        line = 12345
        healthy = mapper.camp_locations(line)
        dropped = mapper.set_alive_mask(np.ones(topo.num_units, dtype=bool))
        assert dropped == 1  # the memoized table for `line`
        assert mapper._alive is None  # all-True normalizes to healthy
        assert mapper.camp_locations(line) == healthy

    def test_dead_unit_never_hosts_a_camp(self):
        topo, mapper = self._mapper()
        line = 777
        home = mapper.home_unit(line)
        healthy = mapper.camp_locations(line)
        victim = next(u for u in healthy if u != home)
        alive = np.ones(topo.num_units, dtype=bool)
        alive[victim] = False
        mapper.set_alive_mask(alive)
        locs = mapper.camp_locations(line)
        assert victim not in locs
        assert len(locs) == len(healthy)  # a replacement camp was elected
        # the home group always keeps the home unit itself
        home_group = topo.group_of(home)
        assert mapper.locations(line)[home_group] == home
        # surviving camps are alive and stay inside the victim's group
        for u in locs:
            assert alive[u]
        assert any(topo.group_of(u) == topo.group_of(victim) for u in locs)

    def test_fully_dead_group_drops_its_camp(self):
        topo, mapper = self._mapper()
        line = 777
        home = mapper.home_unit(line)
        healthy = mapper.camp_locations(line)
        victim = next(u for u in healthy if u != home)
        group = topo.group_of(victim)
        alive = np.ones(topo.num_units, dtype=bool)
        alive[topo.units_in_group(group)] = False
        mapper.set_alive_mask(alive)
        locs = mapper.camp_locations(line)
        assert all(topo.group_of(u) != group for u in locs)
        assert len(locs) == len(healthy) - 1  # the -1 sentinel dropped

    def test_restoring_liveness_restores_mapping(self):
        topo, mapper = self._mapper()
        line = 424242
        healthy = mapper.camp_locations(line)
        home = mapper.home_unit(line)
        victim = next(u for u in healthy if u != home)
        alive = np.ones(topo.num_units, dtype=bool)
        alive[victim] = False
        mapper.set_alive_mask(alive)
        assert mapper.camp_locations(line) != healthy
        mapper.set_alive_mask(None)
        assert mapper.camp_locations(line) == healthy


# ----------------------------------------------------------------------
# the controller on a live machine
# ----------------------------------------------------------------------
class TestFaultController:
    def test_never_kills_the_last_unit(self):
        cfg = small_cfg()
        sched = FaultSchedule.unit_failures(range(cfg.topology.num_units))
        system = build_system("O", cfg, fault_schedule=sched)
        result = system.run(small_workload())
        ctl = system.fault_controller
        assert int(ctl.alive.sum()) == 1
        assert ctl.stats.unit_failures == cfg.topology.num_units - 1
        assert result.tasks_executed > 0

    def test_transient_fault_recovers(self):
        cfg = small_cfg()
        sched = FaultSchedule.unit_failures([5], at_timestamp=1,
                                            duration_phases=2)
        system = build_system("O", cfg, fault_schedule=sched)
        # enough phases that the recovery timestamp is actually reached
        system.run(repro.make_workload("pr", num_vertices=256, iterations=6))
        ctl = system.fault_controller
        assert ctl.stats.unit_failures == 1
        assert ctl.stats.unit_recoveries == 1
        assert bool(ctl.alive.all())

    def test_double_fault_is_ignored(self):
        cfg = small_cfg()
        sched = FaultSchedule((
            FaultEvent(FaultKind.UNIT_FAIL, unit=3, at_timestamp=1),
            FaultEvent(FaultKind.UNIT_FAIL, unit=3, at_timestamp=2),
        ))
        system = build_system("O", cfg, fault_schedule=sched)
        system.run(small_workload())
        assert system.fault_controller.stats.unit_failures == 1

    def test_rejects_unknown_targets(self):
        cfg = small_cfg()
        with pytest.raises(ValueError, match="unknown unit"):
            build_system("O", cfg,
                         fault_schedule=FaultSchedule.unit_failures([999]))
        bad_link = FaultSchedule((FaultEvent(
            FaultKind.LINK_FAIL, link=(0, 3), at_timestamp=1),))
        with pytest.raises(ValueError, match="non-adjacent"):
            build_system("O", cfg, fault_schedule=bad_link)

    def test_probabilistic_trigger_is_reproducible(self):
        cfg = small_cfg()
        sched = FaultSchedule((FaultEvent(
            FaultKind.UNIT_FAIL, unit=9, probability=0.3),))
        wl = small_workload()
        runs = [build_system("O", cfg, fault_schedule=sched).run(wl)
                for _ in range(2)]
        assert (runs[0].makespan_cycles == runs[1].makespan_cycles)
        assert (runs[0].resilience.to_dict()
                == runs[1].resilience.to_dict())


# ----------------------------------------------------------------------
# end-to-end campaigns: the zero-lost-tasks guarantee
# ----------------------------------------------------------------------
class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        cfg = small_cfg()
        topo = Topology(cfg.topology,
                        num_groups=cfg.cache.num_groups())
        sched = make_random_schedule(
            topo.num_units, topo.mesh_links(),
            unit_fails=4, link_fails=2, seed=cfg.seed,
            timestamp_spread=1,  # the small run has few phases
        )
        return run_fault_campaign("O", small_workload(), sched,
                                  config=cfg, cache=False, jobs=1)

    def test_no_tasks_are_lost(self, campaign):
        assert campaign.total_lost_tasks == 0
        assert not campaign.failures

    def test_recovery_metrics_reported(self, campaign):
        res = campaign.faulted["f0"].resilience
        assert res is not None
        assert res.unit_failures == 4
        assert res.link_failures == 2
        assert res.recovery_cycles > 0
        assert res.slowdown_vs_healthy == pytest.approx(
            campaign.slowdown("f0"))

    def test_faults_cost_time_not_work(self, campaign):
        assert campaign.slowdown("f0") > 1.0
        healthy, faulted = campaign.healthy, campaign.faulted["f0"]
        assert faulted.tasks_executed == healthy.tasks_executed

    def test_healthy_reference_has_no_resilience(self, campaign):
        assert campaign.healthy.resilience is None

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_fault_campaign("O", small_workload(), FaultSchedule(),
                               config=small_cfg(), cache=False)

    def test_same_seed_campaign_is_bit_identical(self, campaign):
        cfg = small_cfg()
        topo = Topology(cfg.topology, num_groups=cfg.cache.num_groups())
        sched = make_random_schedule(
            topo.num_units, topo.mesh_links(),
            unit_fails=4, link_fails=2, seed=cfg.seed,
            timestamp_spread=1,  # the small run has few phases
        )
        again = run_fault_campaign("O", small_workload(), sched,
                                   config=cfg, cache=False, jobs=1)
        a, b = campaign.faulted["f0"], again.faulted["f0"]
        assert a.makespan_cycles == b.makespan_cycles
        assert a.tasks_executed == b.tasks_executed
        assert a.inter_hops == b.inter_hops
        assert a.resilience.to_dict() == b.resilience.to_dict()


# ----------------------------------------------------------------------
# DRAM vault latency scaling
# ----------------------------------------------------------------------
class TestVaultSlowdown:
    def test_access_latency_scales_per_unit(self):
        from repro.arch.dram import DramChannel

        dram = DramChannel(MemoryConfig())
        base = dram.access_latency_ns
        assert dram.access_latency_at(0) == base
        scale = np.ones(32)
        scale[7] = 4.0
        dram.set_unit_latency_scale(scale)
        assert dram.access_latency_at(7) == pytest.approx(4.0 * base)
        assert dram.access_latency_at(0) == pytest.approx(base)
        # all-ones normalizes back to the fast healthy path
        dram.set_unit_latency_scale(np.ones(32))
        assert dram._latency_scale is None

    def test_vault_slow_run_is_slower(self):
        cfg = small_cfg()
        wl = small_workload()
        healthy = repro.simulate("O", wl, cfg)
        sched = FaultSchedule((FaultEvent(
            FaultKind.VAULT_SLOW, unit=0, at_timestamp=1, factor=8.0),))
        slow = repro.simulate("O", wl, cfg, fault_schedule=sched)
        assert slow.resilience.vault_slowdowns == 1
        assert slow.makespan_cycles > healthy.makespan_cycles
        assert slow.tasks_executed == healthy.tasks_executed
