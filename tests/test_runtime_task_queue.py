"""Unit tests for the task model, task queue, and workload exchange."""

import numpy as np
import pytest

from repro.arch.topology import Topology
from repro.config import TopologyConfig
from repro.runtime.queue import TaskQueue
from repro.runtime.task import Task, TaskContext, TaskHint
from repro.runtime.workload_exchange import WorkloadExchange


def make_task(ts=0, addrs=(0, 64), workload=None, **kw) -> Task:
    return Task(
        func=lambda ctx: None,
        timestamp=ts,
        hint=TaskHint(addresses=np.array(addrs, dtype=np.int64),
                      workload=workload),
        **kw,
    )


class TestTaskHint:
    def test_addresses_coerced_to_int64(self):
        hint = TaskHint(addresses=[1, 2, 3])
        assert hint.addresses.dtype == np.int64
        assert hint.num_addresses == 3

    def test_empty(self):
        assert TaskHint.empty().num_addresses == 0


class TestTask:
    def test_ids_unique(self):
        assert make_task().task_id != make_task().task_id

    def test_instructions_track_compute(self):
        t = make_task(compute_cycles=77.0)
        assert t.instructions == 77.0


class TestTaskContext:
    def test_enqueue_collects_children(self):
        ctx = TaskContext(current_unit=5, timestamp=2)
        child = ctx.enqueue_task(lambda c: None, 3, TaskHint.empty(), 42)
        assert child.spawner_unit == 5
        assert child.timestamp == 3
        assert child.args == (42,)
        assert ctx.drain_spawned() == [child]
        assert ctx.drain_spawned() == []

    def test_rejects_backward_timestamps(self):
        ctx = TaskContext(current_unit=0, timestamp=5)
        with pytest.raises(ValueError):
            ctx.enqueue_task(lambda c: None, 4, TaskHint.empty())


class TestTaskQueue:
    def test_fifo_order(self):
        q = TaskQueue()
        t1, t2 = make_task(), make_task()
        q.enqueue(t1)
        q.enqueue(t2)
        assert q.dequeue() is t1
        assert q.dequeue() is t2

    def test_steal_takes_the_back(self):
        q = TaskQueue()
        t1, t2 = make_task(), make_task()
        q.enqueue(t1)
        q.enqueue(t2)
        assert q.steal_from_back() is t2
        assert q.steal_from_back() is t1
        assert q.steal_from_back() is None

    def test_windows(self):
        q = TaskQueue(scheduling_window=3, prefetch_window=2)
        tasks = [make_task() for _ in range(5)]
        for t in tasks:
            q.enqueue(t)
        assert q.prefetch_candidates() == tasks[:2]
        assert q.scheduling_candidates() == tasks[:3]

    def test_remove(self):
        q = TaskQueue()
        t = make_task()
        q.enqueue(t)
        assert q.remove(t)
        assert not q.remove(t)
        assert len(q) == 0

    def test_enqueue_front(self):
        q = TaskQueue()
        t1, t2 = make_task(), make_task()
        q.enqueue(t1)
        q.enqueue_front(t2)
        assert q.dequeue() is t2

    def test_queued_workload_uses_booked(self):
        q = TaskQueue()
        t = make_task()
        t.booked_workload = 50.0
        q.enqueue(t)
        assert q.queued_workload() == 50.0

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            TaskQueue().dequeue()

    def test_counters(self):
        q = TaskQueue()
        q.enqueue(make_task())
        q.dequeue()
        assert q.total_enqueued == 1 and q.total_dequeued == 1

    def test_bad_window_sizes(self):
        with pytest.raises(ValueError):
            TaskQueue(scheduling_window=-1)


class TestWorkloadExchange:
    @pytest.fixture
    def exchange(self) -> WorkloadExchange:
        topo = Topology(TopologyConfig(2, 2, 4), num_groups=1)
        return WorkloadExchange(topo, interval_cycles=100.0)

    def test_true_counters_track_enqueue_dequeue(self, exchange):
        exchange.on_enqueue(3, 10.0)
        exchange.on_enqueue(3, 5.0)
        exchange.on_dequeue(3, 10.0)
        assert exchange.true_workloads[3] == 5.0

    def test_dequeue_clamped_at_zero(self, exchange):
        exchange.on_dequeue(0, 99.0)
        assert exchange.true_workloads[0] == 0.0

    def test_snapshot_stale_until_boundary(self, exchange):
        exchange.on_enqueue(1, 42.0)
        assert exchange.snapshot[1] == 0.0
        assert not exchange.advance(50.0)     # before the interval
        assert exchange.snapshot[1] == 0.0
        assert exchange.advance(100.0)        # boundary crossed
        assert exchange.snapshot[1] == 42.0

    def test_visible_is_snapshot_for_everyone(self, exchange):
        exchange.force_exchange(0.0)
        exchange.on_enqueue(2, 7.0)
        # Post-snapshot arrivals are invisible to every observer alike
        # (asymmetric freshness would bias the comparison; see the
        # visible_workloads docstring).
        assert exchange.visible_workloads(5)[2] == 0.0
        assert exchange.visible_workloads(6)[2] == 0.0

    def test_visible_is_symmetric_in_staleness(self, exchange):
        # Arrivals stay invisible until the next exchange -- for the
        # observer's own queue too (no freshness bias).
        exchange.on_enqueue(4, 9.0)
        assert exchange.visible_workloads(4)[4] == 0.0
        exchange.force_exchange(0.0)
        assert exchange.visible_workloads(4)[4] == 9.0

    def test_visible_view_is_read_only(self, exchange):
        exchange.force_exchange(0.0)
        import pytest as _pytest
        with _pytest.raises(ValueError):
            exchange.visible_workloads(0)[0] = 1.0

    def test_dequeues_visible_only_after_refresh(self, exchange):
        exchange.on_enqueue(2, 7.0)
        exchange.advance(200.0)
        assert exchange.visible_workloads(5)[2] == 7.0
        exchange.on_dequeue(2, 7.0)
        assert exchange.visible_workloads(6)[2] == 7.0  # stale until next
        exchange.advance(400.0)
        assert exchange.visible_workloads(6)[2] == 0.0

    def test_exchange_message_accounting(self, exchange):
        before = exchange.stats.rounds
        exchange.force_exchange(0.0)
        assert exchange.stats.rounds == before + 1
        assert exchange.stats.intra_messages > 0
        assert exchange.stats.inter_messages > 0

    def test_move(self, exchange):
        exchange.on_enqueue(0, 10.0)
        exchange.move(0, 1, 10.0)
        assert exchange.true_workloads[0] == 0.0
        assert exchange.true_workloads[1] == 10.0

    def test_reset(self, exchange):
        exchange.on_enqueue(0, 10.0)
        exchange.force_exchange(0.0)
        exchange.reset()
        assert exchange.true_workloads.sum() == 0
        assert exchange.snapshot.sum() == 0

    def test_rejects_bad_interval(self):
        topo = Topology(TopologyConfig(2, 2, 4), num_groups=1)
        with pytest.raises(ValueError):
            WorkloadExchange(topo, 0)
