"""Unit tests for the DRAM channel and SRAM analytic models."""

import pytest

from repro.arch.dram import DramChannel, DramStats
from repro.arch.sram import (
    SramModel,
    SramStats,
    sram_access_energy_pj,
    sram_area_mm2,
)
from repro.config import KB, MB, MemoryConfig, SramConfig


class TestDramChannel:
    def test_access_latency(self):
        assert DramChannel(MemoryConfig()).access_latency_ns == 34.0

    def test_row_hit_latency_is_tcas(self):
        assert DramChannel(MemoryConfig()).row_hit_latency_ns == 17.0

    def test_energy_counts_all_event_kinds(self):
        ch = DramChannel(MemoryConfig())
        stats = DramStats(reads=10, writes=5, cache_fills=3,
                          cache_reads=2, tag_accesses_in_dram=1)
        assert stats.total_accesses == 21
        assert ch.energy_pj(stats) == pytest.approx(21 * ch.access_energy_pj())

    def test_stats_merge(self):
        a = DramStats(reads=1)
        b = DramStats(writes=2, cache_fills=3)
        a.merge(b)
        assert (a.reads, a.writes, a.cache_fills) == (1, 2, 3)

    def test_stats_reset(self):
        s = DramStats(reads=9)
        s.reset()
        assert s.total_accesses == 0


class TestSramAreaModel:
    def test_calibration_anchor_8mb(self):
        """Section 7.2: an 8 MB SRAM data array needs ~16.12 mm^2."""
        assert sram_area_mm2(8 * MB) == pytest.approx(16.12, rel=1e-6)

    def test_traveller_tag_array_is_far_smaller(self):
        """Section 7.2: Traveller's ~160 kB tag array needs ~0.32 mm^2."""
        area = sram_area_mm2(160 * KB)
        assert 0.1 < area < 0.5

    def test_monotone_in_capacity(self):
        assert sram_area_mm2(1 * MB) < sram_area_mm2(2 * MB)

    def test_zero_capacity_zero_area(self):
        assert sram_area_mm2(0) == 0.0

    def test_overhead_inflates_area(self):
        assert sram_area_mm2(1 * MB, 0.25) > sram_area_mm2(1 * MB)


class TestSramEnergyModel:
    def test_anchor(self):
        assert sram_access_energy_pj(64 * KB) == pytest.approx(20.0)

    def test_sqrt_scaling(self):
        assert sram_access_energy_pj(256 * KB) == pytest.approx(40.0)


class TestSramModel:
    def test_energy_sums_structures(self):
        model = SramModel(SramConfig())
        stats = SramStats(l1_accesses=2, prefetch_accesses=3, tag_accesses=5)
        expected = 2 * 20.0 + 3 * 8.0 + 5 * 5.0
        assert model.energy_pj(stats) == pytest.approx(expected)

    def test_area_includes_tag_array(self):
        without = SramModel(SramConfig(), tag_array_bytes=0)
        with_tags = SramModel(SramConfig(), tag_array_bytes=160 * KB)
        assert with_tags.total_area_mm2() > without.total_area_mm2()
        assert with_tags.tag_area_mm2() > 0

    def test_stats_merge(self):
        a, b = SramStats(l1_accesses=1), SramStats(tag_accesses=2)
        a.merge(b)
        assert a.l1_accesses == 1 and a.tag_accesses == 2
