"""Unit + property tests for the Traveller Cache array and policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MemoryConfig, ReplacementPolicy
from repro.core.cache.dram_tag_cache import DramTagCache
from repro.core.cache.policies import (
    LruReplacement,
    ProbabilisticInsertion,
    RandomReplacement,
    make_replacement_policy,
)
from repro.core.cache.sram_cache import SramDataCache
from repro.core.cache.traveller import CacheStatsTotal, TravellerCache


def make_cache(bypass=0.0, repl=ReplacementPolicy.RANDOM, ratio=1 << 16,
               assoc=4, seed=3):
    """A tiny Traveller array (few sets) for fast tests."""
    cfg = CacheConfig(
        bypass_probability=bypass, replacement=repl,
        capacity_ratio=ratio, associativity=assoc,
    )
    return TravellerCache(cfg, MemoryConfig(), np.random.default_rng(seed))


class TestLookupInsert:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(100)
        assert cache.insert(100)
        assert cache.lookup(100)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.insertions == 1

    def test_duplicate_insert_refused(self):
        cache = make_cache()
        assert cache.insert(5)
        assert not cache.insert(5)
        assert cache.stats.insertions == 1

    def test_set_mapping_is_modulo(self):
        cache = make_cache()
        s = cache.num_sets
        cache.insert(7)
        assert cache._set_of(7) == cache._set_of(7 + s)

    def test_eviction_when_set_full(self):
        cache = make_cache(assoc=2)
        s = cache.num_sets
        lines = [3, 3 + s, 3 + 2 * s]  # all map to the same set
        for line in lines:
            cache.insert(line)
        assert cache.stats.evictions == 1
        present = [line for line in lines if cache.contains(line)]
        assert len(present) == 2

    def test_occupancy_and_capacity(self):
        cache = make_cache()
        for line in range(10):
            cache.insert(line)
        assert cache.occupancy() == 10
        assert cache.capacity_lines == cache.num_sets * 4


class TestBypass:
    def test_full_bypass_never_inserts(self):
        cache = make_cache(bypass=1.0)
        for line in range(50):
            assert not cache.insert(line)
        assert cache.stats.bypasses == 50
        assert cache.occupancy() == 0

    def test_probabilistic_bypass_rate(self):
        cache = make_cache(bypass=0.4, seed=11)
        n = 2000
        inserted = sum(cache.insert(line) for line in range(n))
        assert 0.5 < inserted / n < 0.7  # ~60% insert rate

    def test_hot_line_eventually_cached(self):
        """The paper's argument: frequently accessed data will be
        inserted after a few trials despite the bypass filter."""
        cache = make_cache(bypass=0.4, seed=5)
        line = 42
        for _ in range(20):
            if cache.lookup(line):
                break
            cache.insert(line)
        assert cache.contains(line)


class TestBulkInvalidation:
    def test_invalidate_clears_everything(self):
        cache = make_cache()
        for line in range(20):
            cache.insert(line)
        cache.bulk_invalidate()
        assert cache.occupancy() == 0
        assert cache.stats.invalidation_rounds == 1
        assert not cache.lookup(0)


class TestReplacementPolicies:
    def test_lru_prefers_oldest(self):
        cache = make_cache(repl=ReplacementPolicy.LRU, assoc=2)
        s = cache.num_sets
        cache.insert(1)
        cache.insert(1 + s)
        cache.lookup(1)             # 1 is now MRU
        cache.insert(1 + 2 * s)     # evicts 1+s
        assert cache.contains(1)
        assert not cache.contains(1 + s)

    def test_factory(self):
        assert isinstance(
            make_replacement_policy(ReplacementPolicy.RANDOM), RandomReplacement
        )
        assert isinstance(
            make_replacement_policy(ReplacementPolicy.LRU), LruReplacement
        )

    def test_random_choice_in_range(self):
        policy = RandomReplacement()
        rng = np.random.default_rng(0)
        order = np.zeros(4, dtype=np.int64)
        for _ in range(50):
            assert 0 <= policy.choose_way(order, rng) < 4

    def test_insertion_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticInsertion(1.2)


class TestStatsAggregation:
    def test_merge(self):
        a = CacheStatsTotal(hits=1, misses=2, insertions=3)
        b = CacheStatsTotal(hits=10, bypasses=4, home_direct=5)
        a.merge(b)
        assert a.hits == 11 and a.misses == 2
        assert a.bypasses == 4 and a.home_direct == 5

    def test_hit_rate(self):
        s = CacheStatsTotal(hits=3, misses=1)
        assert s.hit_rate == pytest.approx(0.75)
        assert CacheStatsTotal().hit_rate == 0.0


class TestFoilDesigns:
    def test_sram_cache_reports_huge_data_area(self):
        cfg = CacheConfig()
        cache = SramDataCache(cfg, MemoryConfig(), np.random.default_rng(0))
        # The paper's 8 MB SRAM cache needs ~16 mm^2.
        assert cache.data_area_mm2() == pytest.approx(16.12, rel=0.01)

    def test_dram_tag_cache_probe_penalty_and_area(self):
        cfg = CacheConfig()
        cache = DramTagCache(cfg, MemoryConfig(), np.random.default_rng(0))
        assert cache.tag_probe_dram_accesses() == 1
        assert cache.tag_area_mm2() == 0.0


@settings(max_examples=25, deadline=None)
@given(
    lines=st.lists(st.integers(0, 10_000), min_size=1, max_size=300),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
def test_property_cache_never_exceeds_capacity(lines, assoc):
    cache = make_cache(assoc=assoc)
    for line in lines:
        if not cache.lookup(line):
            cache.insert(line)
        assert cache.contains(line)  # bypass=0: just-inserted is present
    assert cache.occupancy() <= cache.capacity_lines


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_same_seed_same_behaviour(seed):
    """Runs are deterministic given the RNG seed."""
    a = make_cache(bypass=0.5, seed=seed)
    b = make_cache(bypass=0.5, seed=seed)
    outcomes_a = [a.insert(line) for line in range(100)]
    outcomes_b = [b.insert(line) for line in range(100)]
    assert outcomes_a == outcomes_b
