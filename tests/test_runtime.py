"""Tests for the warm worker runtime (repro.sweep.runtime): scope
gating, workload spec resolution, the shared-memory store, warm-vs-cold
bit-identity, fault-epoch memo invalidation, crash cleanup and the
history-informed LPT ordering."""

import json
import os

import pytest

import repro
from repro.config import experiment_config
from repro.faults import FaultSchedule
from repro.observatory.history import HistoryLedger, RunRecord
from repro.sweep import ResultCache, SweepPoint, SweepRunner
from repro.sweep import runner as runner_mod
from repro.sweep import runtime as runtime_mod
from repro.sweep.runtime import (
    SHM_PREFIX,
    ProcessMemos,
    SharedWorkloadStore,
    WorkerRuntime,
    active_memos,
    lpt_order,
    materialize_point,
    predicted_wall_times,
    resolve_workload_spec,
    warm_memos,
)
from repro.sweep.serialize import result_to_dict

POINT_KW = {"num_points": 256, "iterations": 1}


@pytest.fixture(autouse=True)
def _isolated_runtime(monkeypatch, tmp_path):
    """Fresh memos, no ambient scope, and all cache/history side
    effects redirected into tmp_path (CI runs under REPRO_NO_CACHE=1,
    which individual tests override explicitly)."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ambient_cache"))
    monkeypatch.setattr(runtime_mod, "_MEMOS", None)
    monkeypatch.setattr(runtime_mod, "_SCOPE_DEPTH", 0)


def small_cfg():
    return experiment_config().scaled(2, 2)


def kmeans_points(designs=("B", "O"), cfg=None):
    cfg = cfg or small_cfg()
    return [
        SweepPoint(d, "kmeans", cfg, workload_kwargs=dict(POINT_KW))
        for d in designs
    ]


def result_blobs(report):
    return [
        json.dumps(result_to_dict(o.result), sort_keys=True)
        for o in report.outcomes
    ]


def shm_leaks():
    """Names of this runtime's segments still present in /dev/shm."""
    if not os.path.isdir("/dev/shm"):  # non-Linux: nothing to check
        return []
    return [n for n in os.listdir("/dev/shm") if n.startswith(SHM_PREFIX)]


# ----------------------------------------------------------------------
class TestScopeGating:
    def test_cold_by_default(self):
        assert active_memos() is None

    def test_warm_scope_enables_and_restores(self):
        with warm_memos() as memos:
            assert active_memos() is memos
            with warm_memos() as inner:  # re-entrant, same memos
                assert inner is memos
            assert active_memos() is memos
        assert active_memos() is None

    def test_memos_survive_scope_exit(self):
        with warm_memos() as memos:
            memos.workloads["tok"] = "wl"
        with warm_memos() as memos:
            assert memos.workloads.get("tok") == "wl"

    def test_materialize_point_cold_is_plain_materialize(self):
        point = kmeans_points(["B"])[0]
        wl = materialize_point(point)
        assert wl.name == "kmeans"
        assert active_memos() is None


# ----------------------------------------------------------------------
class TestResolveWorkloadSpec:
    def test_factory_cold(self):
        wl = resolve_workload_spec(("factory", "kmeans", dict(POINT_KW)))
        assert wl.name == "kmeans"

    def test_object_passthrough(self):
        wl = repro.make_workload("kmeans", **POINT_KW)
        assert resolve_workload_spec(("object", wl)) is wl

    def test_factory_warm_memoizes(self):
        spec = ("factory", "kmeans", dict(POINT_KW))
        with warm_memos() as memos:
            a = resolve_workload_spec(spec)
            b = resolve_workload_spec(spec)
            assert a is b
            assert memos.stats.workload_hits == 1
            assert memos.stats.workload_misses == 1

    def test_shm_roundtrip_and_fallback(self):
        store = SharedWorkloadStore()
        try:
            wl = repro.make_workload("kmeans", **POINT_KW)
            desc = store.put("tok123", wl)
            if desc is not None:  # /dev/shm available
                name, size = desc
                out = resolve_workload_spec(("shm", "tok123", name, size,
                                             None))
                assert out.name == "kmeans"
                assert out.clusters == wl.clusters
                assert out.dataset.points.shape == wl.dataset.points.shape
            # a vanished segment falls back to the factory spec
            out = resolve_workload_spec(
                ("shm", "tokX", SHM_PREFIX + "missing", 64,
                 ("factory", "kmeans", dict(POINT_KW))))
            assert out.name == "kmeans"
        finally:
            store.close()

    def test_shm_missing_without_fallback_raises(self):
        with pytest.raises(Exception):
            resolve_workload_spec(
                ("shm", "tokX", SHM_PREFIX + "missing", 64, None))


# ----------------------------------------------------------------------
class TestSharedWorkloadStore:
    def test_put_dedupes_and_close_unlinks(self):
        store = SharedWorkloadStore()
        wl = repro.make_workload("kmeans", **POINT_KW)
        desc = store.put("tok", wl)
        if desc is None:
            pytest.skip("shared memory unavailable")
        assert store.put("tok", wl) == desc
        assert store.descriptor("tok") == desc
        assert len(store) == 1
        store.close()
        assert store.descriptor("tok") is None
        assert not shm_leaks()
        store.close()  # idempotent
        assert store.put("tok2", wl) is None  # closed store stores nothing

    def test_runtime_close_unlinks_segments(self):
        rt = WorkerRuntime(jobs=1)
        spec = rt.workload_spec(kmeans_points(["B"])[0])
        if spec[0] == "shm" and os.path.isdir("/dev/shm"):
            assert spec[2] in os.listdir("/dev/shm")
        rt.close()
        assert not shm_leaks()
        with pytest.raises(RuntimeError):
            rt.pool(1)

    def test_workload_spec_falls_back_after_close(self):
        rt = WorkerRuntime(jobs=1)
        rt.close()
        spec = rt.workload_spec(kmeans_points(["B"])[0])
        assert spec[0] == "factory"


# ----------------------------------------------------------------------
class TestBitIdentity:
    """Warm results and cache entries are byte-identical to cold ones."""

    def _entry_blobs(self, cache, keys):
        out = []
        for key in keys:
            payload = json.loads(cache.path_for(key).read_text())
            out.append(json.dumps(payload["result"], sort_keys=True))
        return out

    def test_serial_warm_equals_cold(self, tmp_path):
        cfg = small_cfg()
        points = kmeans_points(("B", "C", "O"), cfg) + [
            SweepPoint(d, "astar", cfg,
                       workload_kwargs={"rows": 12, "cols": 12})
            for d in ("C", "O")
        ]
        cold_cache = ResultCache(tmp_path / "cold")
        cold = SweepRunner(cache=cold_cache, jobs=1, runtime=False) \
            .run(points)
        warm_cache = ResultCache(tmp_path / "warm")
        with WorkerRuntime(jobs=1) as rt:
            warm = SweepRunner(cache=warm_cache, jobs=1, runtime=rt) \
                .run(points)
        assert not cold.failures and not warm.failures
        assert all(o.source == "run" for o in warm.outcomes)
        assert result_blobs(cold) == result_blobs(warm)
        keys = [o.key for o in cold.outcomes]
        assert all(keys)
        assert self._entry_blobs(cold_cache, keys) == \
            self._entry_blobs(warm_cache, keys)
        # the warm pass actually exercised the memos
        assert rt.closed

    def test_pool_warm_equals_cold(self, tmp_path):
        points = kmeans_points(("B", "O"))
        cold_cache = ResultCache(tmp_path / "cold")
        cold = SweepRunner(cache=cold_cache, jobs=2, runtime=False) \
            .run(points)
        warm_cache = ResultCache(tmp_path / "warm")
        with WorkerRuntime(jobs=2) as rt:
            warm = SweepRunner(cache=warm_cache, jobs=2, runtime=rt) \
                .run(points)
        assert not cold.failures and not warm.failures
        assert result_blobs(cold) == result_blobs(warm)
        keys = [o.key for o in cold.outcomes]
        assert self._entry_blobs(cold_cache, keys) == \
            self._entry_blobs(warm_cache, keys)
        assert not shm_leaks()

    def test_shared_runtime_across_runs_stays_identical(self):
        points = kmeans_points(("O",))
        cold = SweepRunner(cache=False, jobs=1, runtime=False).run(points)
        with WorkerRuntime(jobs=1) as rt:
            first = SweepRunner(cache=False, jobs=1, runtime=rt).run(points)
            second = SweepRunner(cache=False, jobs=1, runtime=rt).run(points)
        assert result_blobs(cold) == result_blobs(first) == \
            result_blobs(second)


# ----------------------------------------------------------------------
class TestFaultInvalidation:
    """Memos never donate state touched by a fault epoch, and warm
    faulted runs match cold faulted runs bit for bit."""

    WL_KW = {"num_points": 256, "iterations": 2}

    def _run(self, fault_schedule=None):
        wl = repro.make_workload("kmeans", **self.WL_KW)
        if fault_schedule is not None:
            return repro.simulate("O", wl, small_cfg(),
                                  fault_schedule=fault_schedule)
        return repro.simulate("O", wl, small_cfg())

    def test_faulted_runs_never_harvest(self):
        sched = FaultSchedule.unit_failures([1], at_timestamp=1)
        with warm_memos() as memos:
            faulted = self._run(sched)
            assert faulted.resilience is not None
            assert memos.stats.camp_harvests == 0
            assert memos.stats.line_harvests == 0
            assert not memos.noc_tables
            assert not memos.camp_tables
            assert not memos.line_memos

    def test_healthy_after_faulted_matches_cold(self):
        sched = FaultSchedule.unit_failures([1], at_timestamp=1)
        cold_healthy = self._run()
        cold_faulted = self._run(sched)
        with warm_memos() as memos:
            warm_faulted = self._run(sched)
            warm_healthy_1 = self._run()   # harvests
            assert memos.stats.camp_harvests >= 1
            warm_healthy_2 = self._run()   # runs from the seeded memos
            assert memos.stats.camp_seeds >= 1
        blob = lambda r: json.dumps(result_to_dict(r), sort_keys=True)  # noqa: E731
        assert blob(warm_faulted) == blob(cold_faulted)
        assert blob(warm_healthy_1) == blob(cold_healthy)
        assert blob(warm_healthy_2) == blob(cold_healthy)

    def test_fault_points_in_sweep_stay_cold_correct(self):
        sched = FaultSchedule.unit_failures([1], at_timestamp=1)
        cfg = small_cfg()
        points = [
            SweepPoint("O", "kmeans", cfg,
                       workload_kwargs=dict(self.WL_KW)),
            SweepPoint("O", "kmeans", cfg,
                       workload_kwargs=dict(self.WL_KW),
                       fault_schedule=sched),
        ]
        cold = SweepRunner(cache=False, jobs=1, runtime=False).run(points)
        with WorkerRuntime(jobs=1) as rt:
            warm = SweepRunner(cache=False, jobs=1, runtime=rt).run(points)
        assert result_blobs(cold) == result_blobs(warm)
        assert warm.outcomes[1].result.resilience is not None


# ----------------------------------------------------------------------
class TestCrashCleanup:
    def test_worker_crash_retried_in_parent(self, monkeypatch):
        parent = os.getpid()
        real = runner_mod._live_simulate

        def flaky(design, workload, config, telemetry=None,
                  fault_schedule=None):
            if os.getpid() != parent:
                raise RuntimeError("boom in worker")
            return real(design, workload, config)

        monkeypatch.setattr(runner_mod, "_live_simulate", flaky)
        with WorkerRuntime(jobs=2) as rt:
            report = SweepRunner(cache=False, jobs=2, runtime=rt) \
                .run(kmeans_points(("B", "O")))
        assert not report.failures
        assert {o.source for o in report.outcomes} == {"retry"}
        assert not shm_leaks()

    def test_total_crash_reported_and_no_shm_leak(self, monkeypatch):
        def broken(design, workload, config, telemetry=None,
                   fault_schedule=None):
            raise RuntimeError("always boom")

        monkeypatch.setattr(runner_mod, "_live_simulate", broken)
        with WorkerRuntime(jobs=2) as rt:
            report = SweepRunner(cache=False, jobs=2, runtime=rt) \
                .run(kmeans_points(("B", "O")))
        assert len(report.failures) == 2
        assert all(o.source == "failed" for o in report.outcomes)
        assert "always boom" in report.failures[0].error
        assert not shm_leaks()


# ----------------------------------------------------------------------
class TestLptOrdering:
    def _ledger(self, tmp_path, records):
        led = HistoryLedger(path=tmp_path / "history.jsonl")
        for rec in records:
            assert led.append(rec)
        return led

    def _points(self):
        cfg = small_cfg()
        return [
            SweepPoint("B", "pr", cfg),
            SweepPoint("O", "pr", cfg),
            SweepPoint("O", "knn", cfg),  # never seen -> mean fallback
        ], f"{cfg.topology.mesh_rows}x{cfg.topology.mesh_cols}"

    def test_slowest_first_stable(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_HISTORY", raising=False)
        points, mesh = self._points()
        led = self._ledger(tmp_path, [
            RunRecord(source="simulate", design="B", workload="pr",
                      mesh=mesh, wall_s=0.5),
            RunRecord(source="simulate", design="O", workload="pr",
                      mesh=mesh, wall_s=2.0),
        ])
        preds = predicted_wall_times(points, ledger=led)
        assert preds is not None
        assert preds[1] == pytest.approx(2.0)
        assert preds[2] == pytest.approx((0.5 + 2.0) / 2)  # mean fallback
        assert lpt_order(points, ledger=led) == [1, 2, 0]

    def test_median_of_recent_samples(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_HISTORY", raising=False)
        points, mesh = self._points()
        led = self._ledger(tmp_path, [
            RunRecord(source="simulate", design="B", workload="pr",
                      mesh=mesh, wall_s=w)
            for w in (100.0, 1.0, 2.0, 3.0, 4.0, 5.0)  # oldest dropped
        ])
        preds = predicted_wall_times(points, ledger=led)
        assert preds[0] == pytest.approx(3.0)

    def test_identity_without_history(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_HISTORY", raising=False)
        points, _ = self._points()
        empty = HistoryLedger(path=tmp_path / "none.jsonl")
        assert predicted_wall_times(points, ledger=empty) is None
        assert lpt_order(points, ledger=empty) == [0, 1, 2]

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        points, mesh = self._points()
        led = self._ledger(tmp_path, [
            RunRecord(source="simulate", design="O", workload="pr",
                      mesh=mesh, wall_s=2.0),
        ])
        monkeypatch.setenv("REPRO_NO_HISTORY", "1")
        assert predicted_wall_times(points, ledger=led) is None
        assert lpt_order(points, ledger=led) == [0, 1, 2]

    def test_cache_records_ignored(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_HISTORY", raising=False)
        points, mesh = self._points()
        led = self._ledger(tmp_path, [
            RunRecord(source="cache", design="O", workload="pr",
                      mesh=mesh, wall_s=9.0),
        ])
        assert predicted_wall_times(points, ledger=led) is None


# ----------------------------------------------------------------------
class TestProcessMemos:
    def test_machine_key_shared_across_schedulers(self):
        memos = ProcessMemos()
        cfg = small_cfg()
        from repro.core.system import DESIGN_POINTS, _apply_design

        c_cfg = _apply_design(cfg, DESIGN_POINTS["C"])
        o_cfg = _apply_design(cfg, DESIGN_POINTS["O"])
        b_cfg = _apply_design(cfg, DESIGN_POINTS["B"])
        assert memos.machine_key(c_cfg) == memos.machine_key(o_cfg)
        assert memos.machine_key(b_cfg) != memos.machine_key(o_cfg)

    def test_workload_memo_lru_bound(self):
        memos = ProcessMemos()
        for i in range(runtime_mod.MAX_WORKLOAD_MEMOS + 4):
            memos.remember_workload(f"tok{i}", object())
        assert len(memos.workloads) == runtime_mod.MAX_WORKLOAD_MEMOS
        assert "tok0" not in memos.workloads
