"""Tests for the sweep engine: run keys, the on-disk result cache,
and the parallel runner (repro.sweep)."""

import dataclasses
import json

import numpy as np
import pytest

import repro
from repro.analysis.metrics import RunResult
from repro.arch.dram import DramStats
from repro.arch.energy import EnergyBreakdown
from repro.arch.noc import TrafficMeter
from repro.arch.sram import SramStats
from repro.config import experiment_config
from repro.core.cache.traveller import CacheStatsTotal
from repro.sweep import (
    ResultCache,
    SweepPoint,
    SweepRunner,
    UncacheableError,
    cached_simulate,
    result_from_dict,
    result_to_dict,
    run_key,
)
from repro.sweep import runner as runner_mod
from repro.workloads.pagerank import PageRankWorkload


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch):
    """Each test controls caching explicitly — strip ambient overrides
    (CI runs the whole suite under REPRO_NO_CACHE=1)."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


def fake_result(design="B", workload="kmeans", makespan=123.0) -> RunResult:
    return RunResult(
        design=design,
        workload=workload,
        makespan_cycles=makespan,
        active_cycles_per_core=np.array([1.5, 2.5, 3.0]),
        traffic=TrafficMeter(inter_hops=7, intra_transfers=3),
        dram=DramStats(reads=11, writes=5),
        sram=SramStats(l1_accesses=100),
        cache=CacheStatsTotal(hits=4, misses=6),
        energy=EnergyBreakdown(dram_pj=42.0, static_pj=1.0),
        tasks_executed=9,
        timestamps_executed=2,
        steals=1,
        instructions=1000.0,
        extra={"note": 0.5},
    )


class TestRunKeys:
    def test_same_inputs_same_key(self):
        cfg = experiment_config()
        assert run_key("O", "pr", cfg) == run_key("O", "pr", cfg)

    def test_any_field_change_changes_key(self):
        cfg = experiment_config()
        base = run_key("O", "pr", cfg)
        variants = [
            run_key("B", "pr", cfg),
            run_key("O", "bfs", cfg),
            run_key("O", "pr", cfg.with_(seed=99)),
            run_key("O", "pr", cfg.scaled(2, 2)),
            run_key("O", "pr", cfg.with_(cache=dataclasses.replace(
                cfg.cache, num_camps=7))),
            run_key("O", "pr", cfg.with_(scheduler=dataclasses.replace(
                cfg.scheduler, hybrid_alpha=1.0))),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_workload_kwargs_change_key(self):
        cfg = experiment_config()
        a = run_key("B", repro.make_workload(
            "kmeans", num_points=128, iterations=1), cfg)
        b = run_key("B", repro.make_workload(
            "kmeans", num_points=256, iterations=1), cfg)
        assert a != b

    def test_name_and_factory_instance_share_key(self):
        cfg = experiment_config()
        assert run_key("B", "kmeans", cfg) == run_key(
            "B", repro.make_workload("kmeans"), cfg
        )

    def test_direct_instances_hash_structurally_and_stably(self):
        cfg = experiment_config()
        a = run_key("B", PageRankWorkload(num_vertices=256, seed=3), cfg)
        b = run_key("B", PageRankWorkload(num_vertices=256, seed=3), cfg)
        c = run_key("B", PageRankWorkload(num_vertices=256, seed=4), cfg)
        assert a == b
        assert a != c

    def test_uncacheable_workload_raises(self):
        wl = PageRankWorkload(num_vertices=256)
        wl.callback = lambda: None  # not canonicalizable
        with pytest.raises(UncacheableError):
            run_key("B", wl, experiment_config())

    def test_canonical_config_is_stable_json(self):
        cfg = experiment_config()
        assert cfg.canonical_json() == cfg.canonical_json()
        d = cfg.canonical_dict()
        assert d["cache"]["style"] == "traveller"
        assert d["topology"]["mesh_rows"] == 4


class TestResultSerialization:
    def test_round_trip_is_exact(self):
        r = fake_result()
        back = result_from_dict(
            json.loads(json.dumps(result_to_dict(r)))
        )
        assert result_to_dict(back) == result_to_dict(r)
        assert back.active_cycles_per_core.dtype == \
            r.active_cycles_per_core.dtype
        assert back.speedup_over(r) == 1.0


class TestResultCache:
    def test_hit_skips_simulation(self, tmp_path, monkeypatch):
        calls = []

        def counting(design, workload, config):
            calls.append(design)
            return fake_result(design=design)

        monkeypatch.setattr(runner_mod, "_live_simulate", counting)
        cache = ResultCache(root=tmp_path)
        cfg = experiment_config()
        r1 = cached_simulate("B", "kmeans", cfg, cache=cache)
        r2 = cached_simulate("B", "kmeans", cfg, cache=cache)
        assert calls == ["B"]
        assert cache.stats.hits == 1 and cache.stats.stores == 1
        assert result_to_dict(r1) == result_to_dict(r2)

    def test_corrupted_entry_falls_back_to_live_run(
            self, tmp_path, monkeypatch):
        calls = []

        def counting(design, workload, config):
            calls.append(design)
            return fake_result(design=design)

        monkeypatch.setattr(runner_mod, "_live_simulate", counting)
        cache = ResultCache(root=tmp_path)
        cfg = experiment_config()
        cached_simulate("B", "kmeans", cfg, cache=cache)
        key = run_key("B", "kmeans", cfg)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        r = cached_simulate("B", "kmeans", cfg, cache=cache)
        assert calls == ["B", "B"]
        assert cache.stats.corrupt == 1
        assert r.makespan_cycles == 123.0
        # the corrupt entry was replaced by a good one
        assert cached_simulate("B", "kmeans", cfg, cache=cache)
        assert calls == ["B", "B"]

    def test_schema_mismatch_is_invalidated(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_mod, "_live_simulate",
            lambda d, w, c: fake_result(design=d))
        cache = ResultCache(root=tmp_path)
        cfg = experiment_config()
        cached_simulate("B", "kmeans", cfg, cache=cache)
        key = run_key("B", "kmeans", cfg)
        payload = json.loads(cache.path_for(key).read_text())
        payload["schema"] = -1
        cache.path_for(key).write_text(json.dumps(payload))
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_no_cache_env_disables(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(
            runner_mod, "_live_simulate",
            lambda d, w, c: calls.append(d) or fake_result(design=d))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(root=tmp_path)
        cfg = experiment_config()
        cached_simulate("B", "kmeans", cfg, cache=cache)
        cached_simulate("B", "kmeans", cfg, cache=cache)
        assert calls == ["B", "B"]
        assert len(cache) == 0

    def test_clear_and_len(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_mod, "_live_simulate",
            lambda d, w, c: fake_result(design=d))
        cache = ResultCache(root=tmp_path)
        cfg = experiment_config()
        for d in ("B", "O"):
            cached_simulate(d, "kmeans", cfg, cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_compare_designs_routes_through_cache(
            self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(
            runner_mod, "_live_simulate",
            lambda d, w, c: calls.append(d) or fake_result(design=d))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
        cfg = experiment_config()
        repro.compare_designs(["B", "O"], "kmeans", cfg)
        repro.compare_designs(["B", "O"], "kmeans", cfg)
        assert calls == ["B", "O"]
        # and the escape hatch forces live runs
        repro.compare_designs(["B", "O"], "kmeans", cfg, cache=False)
        assert calls == ["B", "O", "B", "O"]


class TestSweepRunner:
    POINT_KW = {"num_points": 256, "iterations": 1}

    def _points(self, designs=("B", "O")):
        cfg = experiment_config().scaled(2, 2)
        return [
            SweepPoint(d, "kmeans", cfg, workload_kwargs=dict(self.POINT_KW))
            for d in designs
        ]

    def test_parallel_matches_serial_bit_for_bit(self):
        par = SweepRunner(cache=False, jobs=2).run(self._points())
        ser = SweepRunner(cache=False, jobs=1).run(self._points())
        assert [result_to_dict(o.result) for o in par.outcomes] == \
            [result_to_dict(o.result) for o in ser.outcomes]
        assert {o.source for o in par.outcomes} == {"run"}

    def test_cache_hits_on_second_sweep(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        first = SweepRunner(cache=cache, jobs=2).run(self._points())
        second = SweepRunner(cache=cache, jobs=2).run(self._points())
        assert all(o.source == "run" for o in first.outcomes)
        assert all(o.source == "cache" for o in second.outcomes)
        assert [result_to_dict(o.result) for o in first.outcomes] == \
            [result_to_dict(o.result) for o in second.outcomes]

    def test_crashed_point_is_retried_once(self, monkeypatch):
        state = {"failed": False}
        real = runner_mod._live_simulate

        def flaky(design, workload, config):
            if design == "O" and not state["failed"]:
                state["failed"] = True
                raise RuntimeError("transient")
            return real(design, workload, config)

        monkeypatch.setattr(runner_mod, "_live_simulate", flaky)
        report = SweepRunner(cache=False, jobs=1).run(self._points())
        by_design = {o.point.design: o for o in report.outcomes}
        assert by_design["B"].source == "run"
        assert by_design["O"].source == "retry"
        assert by_design["O"].ok
        assert not report.failures

    def test_persistent_failure_never_kills_the_sweep(self, monkeypatch):
        real = runner_mod._live_simulate

        def broken(design, workload, config):
            if design == "O":
                raise RuntimeError("always broken")
            return real(design, workload, config)

        monkeypatch.setattr(runner_mod, "_live_simulate", broken)
        report = SweepRunner(cache=False, jobs=1).run(self._points())
        by_design = {o.point.design: o for o in report.outcomes}
        assert by_design["B"].ok
        assert by_design["O"].source == "failed"
        assert "always broken" in by_design["O"].error
        assert len(report.failures) == 1

    def test_progress_lines_and_summary(self, tmp_path):
        lines = []
        runner = SweepRunner(
            cache=ResultCache(root=tmp_path), jobs=1,
            progress=lines.append,
        )
        report = runner.run(self._points(designs=("B",)))
        assert any("ran" in line for line in lines)
        assert "1 points" in report.summary()
        assert "0 failed" in report.summary()


class TestLegacySweepCallable:
    def test_module_still_callable(self):
        cfgs = {"2x2": experiment_config().scaled(2, 2)}
        wl = repro.make_workload("kmeans", num_points=128, iterations=1)
        out = repro.sweep("B", wl, cfgs)
        assert set(out) == {"2x2"}
        assert repro.sweep_configs("B", wl, cfgs).keys() == out.keys()
