"""Unit + property tests for address mapping and the allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.memory_map import Allocator, DataRegion, MemoryMap
from repro.arch.topology import Topology
from repro.config import MemoryConfig, TopologyConfig


@pytest.fixture
def memmap() -> MemoryMap:
    topo = Topology(TopologyConfig(2, 2, 8), num_groups=4)  # 32 units
    return MemoryMap(topo, MemoryConfig())


class TestMemoryMap:
    def test_home_unit_boundaries(self, memmap):
        cap = memmap.unit_capacity
        assert memmap.home_unit(0) == 0
        assert memmap.home_unit(cap - 1) == 0
        assert memmap.home_unit(cap) == 1
        assert memmap.home_unit(memmap.total_capacity - 1) == 31

    def test_out_of_range_address_raises(self, memmap):
        with pytest.raises(ValueError):
            memmap.home_unit(memmap.total_capacity)
        with pytest.raises(ValueError):
            memmap.home_unit(-1)

    def test_line_arithmetic(self, memmap):
        assert memmap.line_of(0) == 0
        assert memmap.line_of(63) == 0
        assert memmap.line_of(64) == 1
        assert memmap.line_addr(100) == 64

    def test_vectorised_matches_scalar(self, memmap):
        addrs = np.array([0, 64, memmap.unit_capacity + 7])
        homes = memmap.home_units(addrs)
        assert homes.tolist() == [memmap.home_unit(int(a)) for a in addrs]
        lines = memmap.lines(addrs)
        assert lines.tolist() == [memmap.line_of(int(a)) for a in addrs]

    def test_unique_lines_deduplicates(self, memmap):
        addrs = np.array([0, 8, 16, 64, 72])
        assert memmap.unique_lines(addrs).tolist() == [0, 1]

    def test_home_of_line_consistent(self, memmap):
        line = memmap.line_of(memmap.unit_capacity + 128)
        assert memmap.home_of_line(line) == 1


class TestAllocator:
    def test_round_robin_spreads_elements(self, memmap):
        alloc = Allocator(memmap)
        region = alloc.alloc("a", 64, elem_bytes=64)
        homes = memmap.home_units(region.addresses)
        # 64 elements over 32 units -> each unit exactly twice
        assert np.bincount(homes, minlength=32).tolist() == [2] * 32

    def test_blocked_gives_contiguous_ranges(self, memmap):
        alloc = Allocator(memmap)
        region = alloc.alloc("b", 64, elem_bytes=64, layout="blocked")
        homes = memmap.home_units(region.addresses)
        # non-decreasing home ids, two per unit
        assert (np.diff(homes) >= 0).all()
        assert np.bincount(homes, minlength=32).tolist() == [2] * 32

    def test_pinned_lands_in_one_unit(self, memmap):
        alloc = Allocator(memmap)
        region = alloc.alloc("c", 10, elem_bytes=64, layout="pinned", unit=7)
        assert set(memmap.home_units(region.addresses).tolist()) == {7}

    def test_addresses_unique_and_aligned(self, memmap):
        alloc = Allocator(memmap)
        r1 = alloc.alloc("x", 100, elem_bytes=64)
        r2 = alloc.alloc("y", 100, elem_bytes=64, layout="blocked")
        all_addrs = np.concatenate([r1.addresses, r2.addresses])
        assert len(np.unique(all_addrs)) == 200
        assert (all_addrs % 64 == 0).all()

    def test_duplicate_name_rejected(self, memmap):
        alloc = Allocator(memmap)
        alloc.alloc("dup", 4)
        with pytest.raises(ValueError):
            alloc.alloc("dup", 4)

    def test_bad_layout_rejected(self, memmap):
        with pytest.raises(ValueError):
            Allocator(memmap).alloc("z", 4, layout="diagonal")

    def test_out_of_memory(self, memmap):
        alloc = Allocator(memmap, reserve_top_fraction=0.999999)
        with pytest.raises(MemoryError):
            alloc.alloc("big", 10_000, elem_bytes=64, layout="pinned")

    def test_reserved_fraction_shrinks_usable_space(self, memmap):
        plain = Allocator(memmap)
        reserved = Allocator(memmap, reserve_top_fraction=0.5)
        assert reserved._usable_per_unit < plain._usable_per_unit

    def test_region_accessors(self, memmap):
        region = Allocator(memmap).alloc("r", 8, elem_bytes=64)
        assert region.count == 8
        assert region.addr(3) == int(region.addresses[3])
        assert region.addrs([1, 2]).tolist() == region.addresses[1:3].tolist()
        assert region.footprint_bytes == 8 * 64


@settings(max_examples=30, deadline=None)
@given(
    count=st.integers(1, 500),
    elem_bytes=st.sampled_from([8, 16, 32, 64, 128]),
    layout=st.sampled_from(["round_robin", "blocked"]),
)
def test_property_allocations_stay_in_home_regions(count, elem_bytes, layout):
    """Every element's bytes stay inside exactly one unit's region."""
    topo = Topology(TopologyConfig(2, 2, 4), num_groups=1)
    memmap = MemoryMap(topo, MemoryConfig())
    region = Allocator(memmap).alloc("p", count, elem_bytes, layout)
    start_units = memmap.home_units(region.addresses)
    end_units = memmap.home_units(region.addresses + elem_bytes - 1)
    assert (start_units == end_units).all()
    assert (region.addresses >= 0).all()
    assert (region.addresses + elem_bytes <= memmap.total_capacity).all()
