"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.arch.memory_map import MemoryMap
from repro.arch.noc import Interconnect
from repro.arch.topology import Topology
from repro.config import (
    CacheConfig,
    MemoryConfig,
    NocConfig,
    TopologyConfig,
    experiment_config,
)
from repro.core.cache.camp import CampMapper
from repro.core.scheduler.base import SchedulerContext
from repro.core.scheduler.colocate import ColocateScheduler
from repro.core.scheduler.hybrid import HybridScheduler
from repro.core.scheduler.lowest_distance import LowestDistanceScheduler
from repro.core.system import build_system
from repro.runtime.task import Task, TaskHint
from repro.runtime.workload_exchange import WorkloadExchange


def make_context(with_camps=False) -> SchedulerContext:
    cache = CacheConfig(num_camps=3)
    groups = cache.num_groups() if with_camps else 1
    topo = Topology(TopologyConfig(2, 2, 8), num_groups=groups)
    memmap = MemoryMap(topo, MemoryConfig())
    noc = Interconnect(topo, NocConfig(), MemoryConfig())
    mapper = CampMapper(topo, memmap, cache) if with_camps else None
    return SchedulerContext(
        memory_map=memmap,
        cost_matrix=noc.cost_matrix,
        exchange=WorkloadExchange(topo, 250),
        camp_mapper=mapper,
        hybrid_weight=30.0,
    )


def task_for(ctx, unit_offsets):
    addrs = [u * ctx.memory_map.unit_capacity + off * 64
             for u, off in unit_offsets]
    return Task(func=lambda c: None, timestamp=0,
                hint=TaskHint(addresses=np.asarray(addrs, dtype=np.int64)),
                spawner_unit=unit_offsets[0][0] if unit_offsets else 0)


units = st.integers(0, 31)
offsets = st.integers(0, 63)
hint_sets = st.lists(st.tuples(units, offsets), min_size=1, max_size=12)


@settings(max_examples=40, deadline=None)
@given(hints=hint_sets)
def test_property_colocate_always_at_main_home(hints):
    ctx = make_context()
    t = task_for(ctx, hints)
    assert ColocateScheduler(ctx).choose_unit(t) == hints[0][0]


@settings(max_examples=40, deadline=None)
@given(hints=hint_sets)
def test_property_lowest_distance_picks_a_data_host(hints):
    ctx = make_context()
    t = task_for(ctx, hints)
    chosen = LowestDistanceScheduler(ctx).choose_unit(t)
    assert chosen in {u for u, _ in hints}


@settings(max_examples=40, deadline=None)
@given(hints=hint_sets, loads=st.lists(st.floats(0, 1e5), min_size=32,
                                       max_size=32))
def test_property_hybrid_returns_valid_unit(hints, loads):
    ctx = make_context(with_camps=True)
    for u, w in enumerate(loads):
        ctx.exchange.on_enqueue(u, w)
    ctx.exchange.force_exchange(0.0)
    t = task_for(ctx, hints)
    chosen = HybridScheduler(ctx, use_camps=True).choose_unit(t)
    assert 0 <= chosen < ctx.num_units


@settings(max_examples=40, deadline=None)
@given(hints=hint_sets)
def test_property_mem_cost_nonnegative_and_zero_if_all_local(hints):
    ctx = make_context()
    t = task_for(ctx, hints)
    costs = ctx.mem_cost_vector(t, use_camps=False)
    assert (costs >= 0).all()
    if len({u for u, _ in hints}) == 1:
        only = hints[0][0]
        assert costs[only] == 0.0


@settings(max_examples=40, deadline=None)
@given(hints=hint_sets, unit=units)
def test_property_workload_estimate_bounds(hints, unit):
    """The booked workload is at least compute and at most
    compute + (max distance + dram) per line."""
    ctx = make_context()
    t = task_for(ctx, hints)
    t.compute_cycles = 50.0
    w = ctx.task_workload(t, unit)
    lines = len({(u, off) for u, off in hints})
    assert w >= 50.0
    worst_per_line = (ctx.cost_matrix.max() + ctx.dram_latency_ns)
    assert w <= 50.0 + lines * worst_per_line * ctx.frequency_ghz + 1e-9


class TestMemorySystemProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        requester=units,
        target_unit=units,
        offset=offsets,
    )
    def test_property_second_access_never_slower(self, requester,
                                                 target_unit, offset):
        """L1/prefetch residency makes re-access cheap."""
        system = build_system("O", experiment_config().scaled(2, 2))
        ms = system.memory_system
        addr = target_unit * system.memory_map.unit_capacity + offset * 64
        line = system.memory_map.line_of(addr)
        first = ms.access(requester, line)
        second = ms.access(requester, line)
        assert second <= first + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(requester=units, target_unit=units)
    def test_property_latency_at_least_dram(self, requester, target_unit):
        system = build_system("B", experiment_config().scaled(2, 2))
        addr = target_unit * system.memory_map.unit_capacity
        line = system.memory_map.line_of(addr)
        latency = system.memory_system.access(requester, line)
        assert latency >= system.dram.access_latency_ns - 1e-9


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_cache_seed_never_changes_answers(seed):
    """The probabilistic insertion RNG affects performance only."""
    wl = repro.make_workload("pr", num_vertices=256, iterations=2)
    cfg = experiment_config().with_(seed=seed).validate()
    repro.simulate("O", wl, cfg, verify=True)


@settings(max_examples=10, deadline=None)
@given(n_tasks=st.integers(1, 60))
def test_property_executor_conserves_tasks(n_tasks):
    system = build_system("Sh", experiment_config().scaled(2, 2))
    tasks = []
    for i in range(n_tasks):
        addr = (i % 32) * system.memory_map.unit_capacity
        tasks.append(Task(
            func=lambda ctx: None,
            timestamp=i % 3,
            hint=TaskHint(addresses=np.array([addr])),
            spawner_unit=i % 32,
        ))
    trace = system.executor.run(tasks)
    assert trace.tasks_executed == n_tasks
    assert trace.timestamps_executed == len({t.timestamp for t in tasks})
