"""System-level tests: design assembly, energy integration, host model,
and the public simulate API."""

import dataclasses

import numpy as np
import pytest

import repro
from repro.arch.energy import EnergyBreakdown
from repro.config import (
    CacheStyle,
    SchedulingPolicy,
    default_config,
    experiment_config,
)
from repro.core.host import HostConfig, HostModel
from repro.core.system import DESIGN_POINTS, NdpSystem, build_system


class TestBuildSystem:
    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            build_system("Z")

    def test_design_overrides_config(self):
        cfg = default_config()  # default policy HYBRID + TRAVELLER
        system = build_system("B", cfg)
        assert system.config.scheduler.policy is SchedulingPolicy.COLOCATE
        assert system.config.cache.style is CacheStyle.NONE

    def test_cacheless_design_has_no_camp_mapper(self):
        system = build_system("Sm")
        assert system.camp_mapper is None
        assert all(c is None for c in system.memory_system.caches)

    def test_cached_design_reserves_allocator_space(self):
        cached = build_system("O").allocator()
        plain = build_system("B").allocator()
        assert cached._usable_per_unit < plain._usable_per_unit

    def test_unit_count_matches_topology(self):
        system = build_system("O", experiment_config().scaled(2, 2))
        assert len(system.units) == 32


class TestEnergyIntegration:
    def test_components_all_positive_for_real_run(self):
        r = repro.simulate("O", "pr", num_vertices=256, iterations=2)
        e = r.energy
        assert e.core_sram_pj > 0
        assert e.dram_pj > 0
        assert e.interconnect_pj > 0
        assert e.static_pj > 0

    def test_static_energy_scales_with_makespan(self):
        cfg = experiment_config()
        sys1 = build_system("B", cfg)
        e_short = sys1.energy_model.integrate(
            0, sys1.memory_system.traffic, sys1.memory_system.dram_stats,
            sys1.memory_system.sram_stats, makespan_cycles=1000.0,
        )
        e_long = sys1.energy_model.integrate(
            0, sys1.memory_system.traffic, sys1.memory_system.dram_stats,
            sys1.memory_system.sram_stats, makespan_cycles=2000.0,
        )
        assert e_long.static_pj == pytest.approx(2 * e_short.static_pj)

    def test_core_energy_is_instructions_times_371pj(self):
        sys1 = build_system("B")
        e = sys1.energy_model.integrate(
            instructions=1000.0,
            traffic=sys1.memory_system.traffic,
            dram_stats=sys1.memory_system.dram_stats,
            sram_stats=sys1.memory_system.sram_stats,
            makespan_cycles=0.0,
        )
        assert e.core_sram_pj == pytest.approx(371_000.0)


class TestHostModel:
    def test_roofline_is_max_of_compute_and_memory(self):
        host = HostModel(HostConfig(parallel_efficiency=1.0))
        compute_bound = host.makespan_ns(instructions=1e9, line_accesses=1)
        memory_bound = host.makespan_ns(instructions=1, line_accesses=1e9)
        assert compute_bound > 0 and memory_bound > 0
        # doubling the binding resource doubles the time
        assert host.makespan_ns(2e9, 1) == pytest.approx(2 * compute_bound)

    def test_ndp_beats_host_on_pagerank(self):
        # Full default-size run: the host comparison is scale-sensitive
        # (short runs are dominated by NDP barrier overhead).
        base = repro.simulate("B", "pr")
        speedup = HostModel().speedup_of(base)
        assert speedup > 2.0  # paper: 3.70x at full scale


class TestSimulateApi:
    def test_simulate_by_name_with_kwargs(self):
        r = repro.simulate("B", "kmeans", num_points=256, iterations=1)
        assert r.tasks_executed == 256

    def test_compare_designs_shares_dataset(self):
        res = repro.compare_designs(
            ["B", "O"], "pr", num_vertices=256, iterations=2
        )
        assert res["B"].tasks_executed == res["O"].tasks_executed

    def test_sweep(self):
        cfgs = {
            "2x2": experiment_config().scaled(2, 2),
            "4x4": experiment_config(),
        }
        wl = repro.make_workload("kmeans", num_points=256, iterations=1)
        out = repro.sweep("B", wl, cfgs)
        assert set(out) == {"2x2", "4x4"}

    def test_all_designs_constant(self):
        assert repro.ALL_DESIGNS == ("B", "Sm", "Sl", "Sh", "C", "O")
        assert set(repro.ALL_DESIGNS) == set(DESIGN_POINTS)


class TestDesignBehaviourEndToEnd:
    """The paper's core claims on a fast knn instance."""

    @pytest.fixture(scope="class")
    def results(self):
        # Default-size knn: the design contrasts need the full query
        # skew to show (smaller instances wash them out).
        return repro.compare_designs(repro.ALL_DESIGNS,
                                     repro.make_workload("knn"))

    def test_cache_cuts_remote_hops(self, results):
        assert results["C"].inter_hops < results["B"].inter_hops
        assert results["O"].inter_hops < results["B"].inter_hops

    def test_balancing_designs_flatten_load(self, results):
        for d in ("Sl", "Sh", "O"):
            assert (results[d].load_imbalance()
                    < results["Sm"].load_imbalance()), d

    def test_abndp_is_fastest(self, results):
        base = results["B"]
        speeds = {d: r.speedup_over(base) for d, r in results.items()}
        assert speeds["O"] == max(speeds.values())
        assert speeds["O"] > 1.2

    def test_traveller_hits_something(self, results):
        assert results["O"].cache.hit_rate > 0.3
