"""RNG plumbing audit: every stochastic component is run-seed derived.

Reproducibility is a core property of the simulator (the sweep cache
assumes bit-identical re-runs) and of the fault subsystem (campaigns
must replay exactly).  These tests pin the two halves of that contract:

* statically, no source file reaches for global/unseeded randomness;
* dynamically, same-seed machines produce identical random streams and
  the fault stream is independent of the system stream.
"""

import pathlib
import re

import numpy as np

import repro
from repro.config import experiment_config
from repro.core.system import build_system
from repro.faults import FAULT_STREAM, FaultSchedule, make_random_schedule

SRC = pathlib.Path(repro.__file__).resolve().parent

#: global-state randomness that would break run reproducibility.
_FORBIDDEN = [
    re.compile(r"np\.random\.seed"),
    re.compile(r"np\.random\.default_rng\(\s*\)"),      # unseeded
    re.compile(r"np\.random\.(rand|randn|randint|random|choice|"
               r"shuffle|permutation)\("),              # legacy global
    re.compile(r"(?<![.\w])import random\b"),           # stdlib global RNG
]


def _source_files():
    files = sorted(SRC.rglob("*.py"))
    assert len(files) > 40  # the audit actually saw the package
    return files


def test_no_global_or_unseeded_randomness_in_package():
    offenders = []
    for path in _source_files():
        text = path.read_text(encoding="utf-8")
        for pat in _FORBIDDEN:
            if pat.search(text):
                offenders.append((str(path.relative_to(SRC)), pat.pattern))
    assert not offenders, f"unseeded/global RNG use: {offenders}"


def test_every_default_rng_call_is_seeded():
    pattern = re.compile(r"default_rng\(([^)]*)\)")
    for path in _source_files():
        for m in pattern.finditer(path.read_text(encoding="utf-8")):
            arg = m.group(1).strip()
            assert arg, f"{path.name}: default_rng() without a seed"


def test_system_rng_is_config_seed_derived():
    cfg = experiment_config().scaled(2, 2)
    a = build_system("O", cfg)
    b = build_system("O", cfg)
    # identical seed -> identical generator state -> identical draws
    assert a.rng.random(8).tolist() == b.rng.random(8).tolist()
    c = build_system("O", cfg.with_(seed=cfg.seed + 1))
    assert a.rng.random(8).tolist() != c.rng.random(8).tolist()


def test_fault_stream_is_independent_of_system_stream():
    seed = 2023
    system_rng = np.random.default_rng(seed)
    fault_rng = np.random.default_rng([seed, FAULT_STREAM])
    # distinct spawn words give distinct (independent) streams
    assert system_rng.random(8).tolist() != fault_rng.random(8).tolist()


def test_fault_schedule_generation_consumes_only_its_own_stream():
    cfg = experiment_config().scaled(2, 2)
    sys_a = build_system("O", cfg)
    before = sys_a.rng.bit_generator.state
    topo = sys_a.topology
    make_random_schedule(topo.num_units, topo.mesh_links(),
                         unit_fails=3, link_fails=1, seed=cfg.seed)
    assert sys_a.rng.bit_generator.state == before


def test_attaching_a_controller_does_not_perturb_system_rng():
    cfg = experiment_config().scaled(2, 2)
    plain = build_system("O", cfg)
    faulted = build_system(
        "O", cfg, fault_schedule=FaultSchedule.unit_failures([3]))
    assert (plain.rng.bit_generator.state
            == faulted.rng.bit_generator.state)
    assert faulted.fault_controller._rng is not faulted.rng
