"""Statistical equivalence of the vector engine (the third tier).

Unlike the batched engine (pinned bit-identical to scalar in
``test_access_engine.py``), the vector engine replaces sequential
mechanisms with closed-form equivalents and is held to the
*equivalence bands* documented in ``docs/engines.md``: per-design
makespan and energy within fixed fractional bands of the batched
engine on the same seeded point, and the makespan geomean across all
six designs within a tighter band.  These tests also pin the tier
plumbing: ``access_engine`` stays a non-semantic config field (one run
key for all three engines), the statistical tier never feeds the sweep
cache, and the regression detector compares vector records through
bands instead of near-exact equality.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.bench import engine_config
from repro.config import engine_tier, experiment_config
from repro.core.system import build_system
from repro.core.vector_engine import (
    ENERGY_BAND,
    MAKESPAN_BAND,
    MAKESPAN_GEOMEAN_BAND,
    VectorPhaseEngine,
)

WORKLOAD_NAMES = ("pr", "knn")


@pytest.fixture(scope="module")
def base_config():
    """Same 2x2-stack machine as the exact-parity suite."""
    return experiment_config().scaled(2, 2)


@pytest.fixture(scope="module")
def workloads():
    return {
        "pr": repro.make_workload("pr", num_vertices=1024, iterations=2),
        "knn": repro.make_workload("knn", num_points=512),
    }


@pytest.fixture(scope="module")
def results(base_config, workloads):
    """(workload, design, engine) -> RunResult for the band matrix."""
    out = {}
    for wname in WORKLOAD_NAMES:
        for design in repro.ALL_DESIGNS:
            for engine in ("batched", "vector"):
                out[wname, design, engine] = repro.simulate(
                    design, workloads[wname],
                    config=engine_config(engine, base_config),
                )
    return out


# ----------------------------------------------------------------------
# equivalence bands
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", repro.ALL_DESIGNS)
@pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
def test_makespan_within_band(design, workload_name, results):
    ratio = (results[workload_name, design, "vector"].makespan_cycles
             / results[workload_name, design, "batched"].makespan_cycles)
    assert abs(ratio - 1.0) <= MAKESPAN_BAND, (
        f"{design}/{workload_name} vector makespan ratio {ratio:.4f} "
        f"outside the ±{MAKESPAN_BAND:.0%} band"
    )


@pytest.mark.parametrize("design", repro.ALL_DESIGNS)
@pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
def test_energy_within_band(design, workload_name, results):
    ratio = (results[workload_name, design, "vector"].energy.total_pj
             / results[workload_name, design, "batched"].energy.total_pj)
    assert abs(ratio - 1.0) <= ENERGY_BAND, (
        f"{design}/{workload_name} vector energy ratio {ratio:.4f} "
        f"outside the ±{ENERGY_BAND:.0%} band"
    )


@pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
def test_makespan_geomean_within_band(workload_name, results):
    logs = [
        math.log(results[workload_name, d, "vector"].makespan_cycles
                 / results[workload_name, d, "batched"].makespan_cycles)
        for d in repro.ALL_DESIGNS
    ]
    geomean = math.exp(sum(logs) / len(logs))
    assert abs(geomean - 1.0) <= MAKESPAN_GEOMEAN_BAND, (
        f"{workload_name} vector makespan geomean {geomean:.4f} outside "
        f"the ±{MAKESPAN_GEOMEAN_BAND:.0%} band"
    )


@pytest.mark.parametrize("design", repro.ALL_DESIGNS)
def test_task_and_access_counts_exact(design, results):
    """Work counts are engine-invariant on *every* tier: the vector
    engine approximates latencies, never the work itself."""
    rb = results["pr", design, "batched"]
    rv = results["pr", design, "vector"]
    assert rv.tasks_executed == rb.tasks_executed
    assert int(rv.sram.l1_accesses) == int(rb.sram.l1_accesses)
    assert int(rv.dram.writes) == int(rb.dram.writes)


# ----------------------------------------------------------------------
# engine plumbing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", repro.ALL_DESIGNS)
def test_vector_engine_attached_on_all_designs(design, base_config):
    """Every Table 2 design runs the columnar kernel (cacheless and
    Traveller styles are both supported)."""
    system = build_system(design, engine_config("vector", base_config))
    ve = system.memory_system.vector_engine
    assert isinstance(ve, VectorPhaseEngine)
    assert VectorPhaseEngine.supported(system.memory_system)
    assert ve.available()


def test_engine_tier_mapping():
    assert engine_tier("scalar") == "exact"
    assert engine_tier("batched") == "exact"
    assert engine_tier("vector") == "vector"
    # unknown/legacy records without an engine field read as exact
    assert engine_tier(None) == "exact"


def test_run_keys_engine_invariant(base_config, workloads):
    """One run key for all three engines: ``access_engine`` is
    non-semantic, so a cached exact result satisfies any engine."""
    from repro.sweep.keys import run_key

    keys = {
        engine: run_key("O", workloads["pr"],
                        engine_config(engine, base_config))
        for engine in ("scalar", "batched", "vector")
    }
    assert keys["scalar"] == keys["batched"] == keys["vector"]


def test_vector_never_feeds_the_cache(tmp_path, monkeypatch,
                                      base_config, workloads):
    """The statistical tier reads the sweep cache but never writes it:
    a vector run must not plant a result that a later exact-tier run
    would replay as truth."""
    from repro.sweep.cache import ResultCache
    from repro.sweep.runner import cached_simulate

    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    workload = workloads["pr"]
    cache = ResultCache(root=tmp_path)

    vcfg = engine_config("vector", base_config)
    cached_simulate("B", workload, config=vcfg, cache=cache)
    assert cache.stats.stores == 0

    bcfg = engine_config("batched", base_config)
    exact = cached_simulate("B", workload, config=bcfg, cache=cache)
    assert cache.stats.stores == 1

    # ... and the vector tier may *load* the exact entry it shares a
    # key with: the cached result replays bit-identically.
    replay = cached_simulate("B", workload, config=vcfg, cache=cache)
    assert replay.makespan_cycles == exact.makespan_cycles
    assert cache.stats.stores == 1


# ----------------------------------------------------------------------
# regression-detector tiers
# ----------------------------------------------------------------------
def _bench_payload(engine, wall, makespan, tasks=2048):
    point = {
        "design": "O", "workload": "pr", "wall_s": wall, "cpu_s": wall,
        "tasks": tasks, "accesses": 10000,
        "tasks_per_s": tasks / wall, "accesses_per_s": 10000 / wall,
        "makespan_cycles": makespan,
    }
    return {
        "schema": "repro-bench-v1", "engine": engine,
        "designs": ["O"], "workloads": ["pr"], "seed": 42, "mesh": "4x4",
        "points": [point],
        "totals": {"wall_s": wall, "cpu_s": wall, "tasks": tasks,
                   "accesses": 10000, "tasks_per_s": tasks / wall,
                   "accesses_per_s": 10000 / wall},
    }


def test_group_signatures_by_tier():
    from repro.observatory.regression import _group_signature

    scalar = _group_signature(_bench_payload("scalar", 3.0, 1e5))
    batched = _group_signature(_bench_payload("batched", 1.0, 1e5))
    vector = _group_signature(_bench_payload("vector", 0.5, 1e5))
    assert scalar == batched
    assert vector != batched


def test_compare_bench_vector_uses_bands():
    """batched→vector comparisons go through the makespan band, not
    the near-exact semantic check; work counts stay near-exact."""
    from repro.observatory.regression import compare_bench

    base = _bench_payload("batched", 1.0, 100000.0)
    in_band = compare_bench(
        base, _bench_payload("vector", 0.5, 95000.0), tolerance=3.0
    )
    assert in_band.ok

    out_of_band = compare_bench(
        base,
        _bench_payload(
            "vector", 0.5, 100000.0 * (1.0 - 2 * MAKESPAN_BAND)
        ),
        tolerance=3.0,
    )
    assert any(f.kind == "band" for f in out_of_band.regressions)

    # a moved task count is a behaviour change on any tier
    bad_tasks = compare_bench(
        base, _bench_payload("vector", 0.5, 95000.0, tasks=2049),
        tolerance=3.0,
    )
    assert any(f.kind == "semantic" for f in bad_tasks.regressions)


def test_exact_pair_still_near_exact():
    """Tier relaxation must not leak into exact-tier comparisons."""
    from repro.observatory.regression import compare_bench

    report = compare_bench(
        _bench_payload("batched", 1.0, 100000.0),
        _bench_payload("batched", 1.0, 100001.0),
        tolerance=3.0,
    )
    assert any(f.kind == "semantic" for f in report.regressions)
