"""Tests for cross-process storage safety: repro.sweep.locking, the
atomic/locked ResultCache writes, the history ledger's rotation race,
and ledger compaction."""

import json
import multiprocessing
import threading

import pytest

from repro.observatory.history import (
    SCHEMA,
    HistoryLedger,
    RunRecord,
)
from repro.sweep.cache import ResultCache
from repro.sweep.locking import (
    LOCK_SUFFIX,
    FileLock,
    atomic_write_bytes,
    lock_path_for,
)


@pytest.fixture(autouse=True)
def _isolate_env(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_NO_HISTORY", raising=False)
    monkeypatch.delenv("REPRO_HISTORY_PATH", raising=False)


def _fake_result(design="B", workload="kmeans", makespan=123.0):
    import numpy as np

    from repro.analysis.metrics import RunResult
    from repro.arch.dram import DramStats
    from repro.arch.energy import EnergyBreakdown
    from repro.arch.noc import TrafficMeter
    from repro.arch.sram import SramStats
    from repro.core.cache.traveller import CacheStatsTotal

    return RunResult(
        design=design,
        workload=workload,
        makespan_cycles=makespan,
        active_cycles_per_core=np.array([1.5, 2.5, 3.0]),
        traffic=TrafficMeter(inter_hops=7, intra_transfers=3),
        dram=DramStats(reads=11, writes=5),
        sram=SramStats(l1_accesses=100),
        cache=CacheStatsTotal(hits=4, misses=6),
        energy=EnergyBreakdown(dram_pj=42.0, static_pj=1.0),
        tasks_executed=9,
        timestamps_executed=2,
        steals=1,
        instructions=1000.0,
    )


def _record(i: int) -> RunRecord:
    return RunRecord(ts=float(i), design="O", workload="pr",
                     source="simulate", wall_s=1.0,
                     key=f"{i:064x}", makespan_cycles=float(i))


# ----------------------------------------------------------------------
class TestFileLock:
    def test_context_manager_creates_lock_file(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert lock.acquired
            assert (tmp_path / "x.lock").exists()
        assert not lock.acquired

    def test_lock_path_for_appends_suffix(self, tmp_path):
        path = tmp_path / "history.jsonl"
        assert str(lock_path_for(path)).endswith(
            "history.jsonl" + LOCK_SUFFIX)

    def test_unwritable_lock_degrades_instead_of_raising(self, tmp_path):
        # the lock parent cannot be created (a *file* sits at the dir
        # path) — locking must degrade to best-effort, not raise.
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        lock = FileLock(blocker / "x.lock")
        with lock:
            assert not lock.acquired  # degraded, but the block still runs

    def test_mutual_exclusion_across_threads(self, tmp_path):
        counter = tmp_path / "counter.txt"
        counter.write_text("0")
        lock_path = tmp_path / "counter.lock"
        iterations = 50

        def bump():
            for _ in range(iterations):
                with FileLock(lock_path):
                    value = int(counter.read_text())
                    counter.write_text(str(value + 1))

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert int(counter.read_text()) == 4 * iterations


class TestAtomicWrite:
    def test_writes_bytes_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "sub" / "x.json"
        atomic_write_bytes(target, b'{"a": 1}')
        assert target.read_bytes() == b'{"a": 1}'
        assert list(tmp_path.glob("**/*.tmp")) == []

    def test_overwrites_whole_file(self, tmp_path):
        target = tmp_path / "x.json"
        atomic_write_bytes(target, b"long old contents" * 10)
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"


# ----------------------------------------------------------------------
class TestCacheStorage:
    def test_store_is_crash_atomic_layout(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        cache.store("ab" * 32, _fake_result())
        entry = cache.path_for("ab" * 32)
        assert entry.exists()
        assert list((tmp_path / "cache").glob("**/*.tmp")) == []
        assert cache.load("ab" * 32) is not None

    def test_stored_payload_bytes_pin(self, tmp_path):
        """The on-disk serialization is pinned: compact-free default
        ``json.dumps`` of {schema, key, meta, result} — the exact
        pre-service format, so old caches stay warm."""
        cache = ResultCache(root=tmp_path / "cache")
        key = "cd" * 32
        cache.store(key, _fake_result(), meta={"design": "B"})
        blob = cache.path_for(key).read_bytes()
        payload = json.loads(blob)
        assert list(payload) == ["schema", "key", "meta", "result"]
        assert payload["schema"] == ResultCache.SCHEMA
        assert payload["key"] == key
        # byte-for-byte: plain json.dumps with default separators,
        # no sort_keys, no indent, ascii escapes on.
        assert blob == json.dumps(payload).encode("utf-8")

    def test_concurrent_same_key_stores_leave_valid_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        key = "ef" * 32
        result = _fake_result()

        def store():
            for _ in range(10):
                cache.store(key, result)

        threads = [threading.Thread(target=store) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.makespan_cycles == result.makespan_cycles

    def test_prune_tmp_removes_orphans(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        cache.store("12" * 32, _fake_result())
        orphan = cache.path_for("12" * 32).parent / "tmpdead.tmp"
        orphan.write_bytes(b"torn write")
        assert cache.prune_tmp() == 1
        assert not orphan.exists()
        assert cache.load("12" * 32) is not None


# ----------------------------------------------------------------------
# the rotation race (satellite #1): multiprocess regression test
# ----------------------------------------------------------------------
def _append_records(path: str, max_bytes: int, start: int, count: int,
                    barrier) -> None:
    ledger = HistoryLedger(path=path, max_bytes=max_bytes)
    barrier.wait()
    for i in range(start, start + count):
        ledger.append(_record(i))


class TestRotationRace:
    def test_concurrent_appends_rotate_exactly_once_without_loss(
            self, tmp_path):
        """Four processes hammer a ledger sized so the combined volume
        crosses the rotation bound exactly once.  Under the writer
        lock the stat+replace+append sequence is atomic, so every
        record survives in current+rotated; without it, concurrent
        rotations clobber ``<path>.1`` and drop whole generations."""
        path = tmp_path / "history.jsonl"
        line_bytes = len(json.dumps(_record(0).to_dict(),
                                    sort_keys=True,
                                    separators=(",", ":"))) + 1
        per_proc, procs = 25, 4
        total = per_proc * procs
        # budget ~= 2/3 of the total volume -> exactly one rotation
        max_bytes = (total * line_bytes * 2) // 3
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(procs)
        workers = [
            ctx.Process(target=_append_records,
                        args=(str(path), max_bytes, p * per_proc,
                              per_proc, barrier))
            for p in range(procs)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=60)
            assert w.exitcode == 0

        survived = []
        for source in (path.with_name("history.jsonl.1"), path):
            if source.exists():
                for line in source.read_text().splitlines():
                    survived.append(json.loads(line)["ts"])
        assert len(survived) == total
        assert sorted(survived) == [float(i) for i in range(total)]

    def test_rotation_keeps_single_generation(self, tmp_path):
        path = tmp_path / "history.jsonl"
        ledger = HistoryLedger(path=path, max_bytes=600)
        for i in range(30):
            ledger.append(_record(i))
        assert path.exists()
        assert ledger.rotated_path().exists()
        assert path.stat().st_size <= 600


# ----------------------------------------------------------------------
class TestCompaction:
    def test_merges_generations_and_drops_corrupt(self, tmp_path):
        path = tmp_path / "history.jsonl"
        ledger = HistoryLedger(path=path, max_bytes=1 << 20)
        rotated_lines = [json.dumps(_record(i).to_dict(),
                                    sort_keys=True,
                                    separators=(",", ":"))
                         for i in range(3)]
        ledger.rotated_path().write_text(
            "\n".join(rotated_lines) + "\ngarbage not json\n")
        for i in range(3, 6):
            ledger.append(_record(i))
        path.write_text(path.read_text() + '{"schema": "wrong"}\n')

        stats = ledger.compact()
        assert not stats.failed
        assert stats.records == 6
        assert stats.merged_generations == 1
        assert stats.dropped_corrupt == 2
        assert stats.dropped_old == 0
        assert not ledger.rotated_path().exists()
        assert [r.ts for r in ledger.records()] == [
            float(i) for i in range(6)]
        assert "6 records kept" in stats.summary()

    def test_budget_keeps_newest(self, tmp_path):
        path = tmp_path / "history.jsonl"
        ledger = HistoryLedger(path=path, max_bytes=1 << 20)
        for i in range(20):
            ledger.append(_record(i))
        line_bytes = path.stat().st_size // 20
        stats = ledger.compact(max_bytes=line_bytes * 5)
        assert stats.records <= 5
        assert stats.dropped_old >= 15
        kept = [r.ts for r in ledger.records()]
        assert kept == sorted(kept)
        assert kept[-1] == 19.0  # newest survives

    def test_compact_empty_ledger_is_noop(self, tmp_path):
        ledger = HistoryLedger(path=tmp_path / "history.jsonl")
        stats = ledger.compact()
        assert not stats.failed
        assert stats.records == 0

    def test_schema_constant_unchanged(self):
        # compaction filters on this tag; pin it so old ledgers compact
        assert SCHEMA == "repro-history-v1"
