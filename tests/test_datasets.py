"""Unit + property tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.datasets import (
    GridMaze,
    clustered_points,
    community_powerlaw_graph,
    grid_maze,
    powerlaw_graph,
    random_weights,
    skewed_sparse_matrix,
    zipf_choices,
)
from repro.workloads.graph import Graph


class TestZipfChoices:
    def test_range_and_size(self):
        rng = np.random.default_rng(0)
        picks = zipf_choices(100, 5000, 1.0, rng)
        assert len(picks) == 5000
        assert picks.min() >= 0 and picks.max() < 100

    def test_skew_concentrates(self):
        rng = np.random.default_rng(0)
        flat = zipf_choices(100, 5000, 0.0, rng)
        skewed = zipf_choices(100, 5000, 1.5, rng)
        top_flat = np.bincount(flat, minlength=100).max()
        top_skew = np.bincount(skewed, minlength=100).max()
        assert top_skew > 2 * top_flat

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_choices(0, 1, 1.0, np.random.default_rng(0))


class TestPowerlawGraph:
    def test_structure(self):
        g = powerlaw_graph(300, 5, seed=1)
        assert g.num_vertices == 300
        assert g.num_edges > 0
        # Symmetric: every edge has its reverse.
        for v in range(0, 300, 37):
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_heavy_tail(self):
        g = powerlaw_graph(1000, 5, seed=2)
        deg = g.degrees
        assert deg.max() > 5 * np.median(deg)

    def test_relabel_scatters_hubs(self):
        raw = powerlaw_graph(500, 5, seed=3, relabel=False)
        shuffled = powerlaw_graph(500, 5, seed=3, relabel=True)
        # Without relabeling BA hubs sit at low ids.
        assert raw.degrees[:50].sum() > shuffled.degrees[:50].sum()

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            powerlaw_graph(4, 8)


class TestCommunityPowerlawGraph:
    def test_default_shape(self):
        g = community_powerlaw_graph(2048)
        assert g.num_vertices == 2048
        deg = g.degrees
        assert deg.min() >= 1          # no isolated vertices
        assert deg.max() > 5 * np.median(deg)  # hubs exist

    def test_hub_concentration(self):
        """Top vertices hold a real share of all edges (the property
        of real-world graphs the generator restores)."""
        g = community_powerlaw_graph(2048)
        deg = np.sort(g.degrees)[::-1]
        assert deg[:64].sum() / deg.sum() > 0.15

    def test_community_locality(self):
        """Most neighbors of a vertex live in its own id neighbourhood
        less often than under a random graph, but intra edges exist."""
        g = community_powerlaw_graph(2048, intra_fraction=0.5)
        n = g.num_vertices
        comm = 2048 // (2 * 11)  # default communities
        same = 0
        total = 0
        for v in range(0, n, 13):
            size = n // comm + 1
            for u in g.neighbors(v):
                total += 1
                if abs(int(u) - v) < size:
                    same += 1
        assert same / total > 0.25

    def test_deterministic(self):
        a = community_powerlaw_graph(512, seed=9)
        b = community_powerlaw_graph(512, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_rejects_oversized_communities(self):
        with pytest.raises(ValueError):
            community_powerlaw_graph(100, 10, communities=50)


class TestRandomWeights:
    def test_weights_symmetric(self):
        g = random_weights(powerlaw_graph(200, 4, seed=5), seed=6)
        for v in range(0, 200, 17):
            for u, w in zip(g.neighbors(v), g.edge_weights(v)):
                u = int(u)
                back = dict(zip(g.neighbors(u).tolist(),
                                g.edge_weights(u).tolist()))
                assert back[v] == pytest.approx(float(w))

    def test_weight_range(self):
        g = random_weights(powerlaw_graph(200, 4, seed=5), 2.0, 3.0, seed=6)
        assert g.weights.min() >= 2.0 and g.weights.max() <= 3.0


class TestGridMaze:
    def test_solvable(self):
        maze = grid_maze(24, 24, 0.25, seed=1)
        assert not maze.blocked[maze.start]
        assert not maze.blocked[maze.goal]

    def test_neighbors_exclude_blocked(self):
        maze = grid_maze(16, 16, 0.3, seed=2)
        for cell in range(maze.num_cells):
            if maze.blocked[cell]:
                continue
            for n in maze.neighbors(cell):
                assert not maze.blocked[n]

    def test_heuristic_is_admissible_lower_bound(self):
        """h is Manhattan distance; with min move cost 1 it never
        exceeds the true remaining cost."""
        maze = grid_maze(12, 12, 0.1, seed=3)
        assert maze.heuristic(maze.goal) == 0
        assert maze.heuristic(maze.start) == (
            (maze.rows - 1) + (maze.cols - 1)
        )

    def test_coords_roundtrip(self):
        maze = grid_maze(8, 10, 0.0, seed=4)
        for cell in (0, 13, 79):
            r, c = maze.coords(cell)
            assert maze.cell(r, c) == cell


class TestSparseMatrix:
    def test_shape_and_rows(self):
        m = skewed_sparse_matrix(rows=200, nnz_per_row=6, seed=7)
        assert m.rows == m.cols == 200
        assert m.nnz == m.indptr[-1]
        for i in range(0, 200, 23):
            cols, vals = m.row_slice(i)
            assert len(cols) == len(vals) >= 1
            assert len(np.unique(cols)) == len(cols)  # no duplicates
            assert (np.diff(cols) > 0).all()          # sorted

    def test_column_skew(self):
        """Some columns are much more popular than the median (the
        per-row dedup bounds how extreme the skew can get)."""
        m = skewed_sparse_matrix(rows=500, nnz_per_row=8, skew=1.0, seed=8)
        counts = np.bincount(m.indices, minlength=m.cols)
        assert counts.max() > 2 * max(1, int(np.median(counts)))
        flat = skewed_sparse_matrix(rows=500, nnz_per_row=8, skew=0.0,
                                    seed=8)
        flat_counts = np.bincount(flat.indices, minlength=flat.cols)
        assert counts.max() > flat_counts.max()

    def test_multiply_matches_dense(self):
        m = skewed_sparse_matrix(rows=50, nnz_per_row=4, seed=9)
        dense = np.zeros((50, 50))
        for i in range(50):
            cols, vals = m.row_slice(i)
            dense[i, cols] = vals
        assert np.allclose(m.multiply(), dense @ m.vector)


class TestClusteredPoints:
    def test_balanced_clusters(self):
        ds = clustered_points(1000, 3, 5, cluster_skew=0.0, seed=10)
        counts = np.bincount(ds.labels, minlength=5)
        assert counts.min() > 100

    def test_skewed_clusters(self):
        ds = clustered_points(1000, 3, 5, cluster_skew=1.5, seed=10)
        counts = np.bincount(ds.labels, minlength=5)
        assert counts.max() > 2 * counts.min()

    def test_points_near_centers(self):
        ds = clustered_points(500, 2, 4, spread=0.1, seed=11)
        d = np.linalg.norm(ds.points - ds.centers[ds.labels], axis=1)
        assert d.mean() < 1.0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(200, 1500),
    m=st.integers(2, 8),
)
def test_property_community_graph_well_formed(n, m):
    g = community_powerlaw_graph(n, m, seed=1)
    assert g.num_vertices == n
    assert (g.indices >= 0).all() and (g.indices < n).all()
    # no self loops
    src = np.repeat(np.arange(n), np.diff(g.indptr))
    assert (src != g.indices).all()
    # symmetric
    fwd = set(zip(src.tolist(), g.indices.tolist()))
    assert all((b, a) in fwd for a, b in list(fwd)[:200])
